"""E7 (Theorem 8.3): whole L2 query trees evaluate with I/O
O(|Q| * |L| / B) in constant main memory.

Measured two ways: (a) a size sweep at fixed query shows linear growth;
(b) the same queries answered with a minimal 2-page buffer pool still
succeed, and their *logical* cost (the model-level quantity) is unchanged.
"""

from repro.engine import QueryEngine
from repro.workload import balanced_instance

from ._util import assert_linear, record

SIZES = (1_000, 2_000, 4_000, 8_000)

# A 7-node L2 query exercising boolean, hierarchical and aggregate layers.
QUERY = (
    "(c (& ( ? sub ? kind=alpha) ( ? sub ? level<8))"
    "   (| ( ? sub ? kind=beta) ( ? sub ? weight>=40))"
    "   count($2) >= 1)"
)


def _cost(size, buffer_pages):
    instance = balanced_instance(size, fanout=4, seed=7)
    engine = QueryEngine.from_instance(
        instance, page_size=16, buffer_pages=buffer_pages
    )
    engine.pager.flush()
    result = engine.run(QUERY)
    logical = result.io.logical_reads + result.io.logical_writes
    return len(result), logical, result.io.total


def test_e7_query_tree_linear(benchmark):
    rows = []
    costs = []
    for size in SIZES:
        selected, logical, physical = _cost(size, buffer_pages=6)
        costs.append(logical)
        rows.append((size, selected, logical, physical, round(logical / size, 3)))
    assert_linear(SIZES, costs)
    record(
        benchmark,
        "E7a: 7-node L2 query tree I/O vs directory size",
        ("entries", "selected", "logical I/O", "physical I/O", "I/O per entry"),
        rows,
    )
    benchmark.pedantic(lambda: _cost(2_000, 6), rounds=3, iterations=1)


def test_e7_constant_memory(benchmark):
    rows = []
    for size in SIZES[:3]:
        selected_big, logical_big, _ = _cost(size, buffer_pages=16)
        selected_tiny, logical_tiny, physical_tiny = _cost(size, buffer_pages=2)
        assert selected_big == selected_tiny  # correctness is pool-independent
        rows.append((size, logical_big, logical_tiny, physical_tiny))
        # The model-level cost does not depend on the pool size.
        assert logical_big == logical_tiny
    record(
        benchmark,
        "E7b: same query, 16-page vs 2-page buffer pool",
        ("entries", "logical I/O (16p)", "logical I/O (2p)", "physical I/O (2p)"),
        rows,
    )
    benchmark.pedantic(lambda: _cost(1_000, 2), rounds=3, iterations=1)
