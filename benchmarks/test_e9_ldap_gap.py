"""E9 (Theorem 8.1, Example 4.1): the LDAP expressiveness gap, measured.

The L0 difference query runs once inside the server.  The LDAP client must
issue one search per atomic leaf and difference the shipped results
client-side; the navigational emulation of the L1 children query needs one
probe per candidate.  Expected shape: LDAP round trips and entries shipped
grow with the *candidate* set, while the L0/L1 engine ships only the
answer."""

from repro.engine import QueryEngine
from repro.filters.parser import parse_filter
from repro.ldapx import LDAPSession, emulate_children, emulate_l0
from repro.query.parser import parse_query
from repro.workload import balanced_instance

from ._util import record

SIZES = (1_000, 2_000, 4_000)

DIFF_QUERY = "(- ( ? sub ? kind=alpha) ( ? sub ? level<5))"
CHILDREN_FIRST = "( ? sub ? kind=alpha)"
CHILDREN_FILTER = "weight>=1"
CHILDREN_QUERY = "(c ( ? sub ? kind=alpha) ( ? sub ? weight>=1))"


def _engines(size):
    instance = balanced_instance(size, fanout=4, seed=9)
    return QueryEngine.from_instance(instance, page_size=16, buffer_pages=8)


def test_e9_l0_difference_gap(benchmark):
    rows = []
    for size in SIZES:
        engine = _engines(size)
        native = engine.run(DIFF_QUERY)
        session = LDAPSession(engine.store)
        emulated = emulate_l0(session, parse_query(DIFF_QUERY))
        assert [str(e.dn) for e in emulated] == native.dns()
        rows.append(
            (size, len(native), 1, session.round_trips,
             len(native), session.entries_shipped)
        )
    record(
        benchmark,
        "E9a: Example 4.1 -- one L0 query vs LDAP client emulation",
        ("entries", "answer", "L0 queries", "LDAP round trips",
         "L0 shipped", "LDAP shipped"),
        rows,
    )
    # LDAP ships the union of both operands; L0 ships only the difference.
    assert rows[-1][5] > 1.5 * rows[-1][4]
    benchmark.pedantic(
        lambda: emulate_l0(LDAPSession(_engines(1_000).store), parse_query(DIFF_QUERY)),
        rounds=3,
        iterations=1,
    )


def test_e9_l1_children_gap(benchmark):
    rows = []
    for size in SIZES:
        engine = _engines(size)
        native = engine.run(CHILDREN_QUERY)
        session = LDAPSession(engine.store)
        emulated = emulate_children(
            session, parse_query(CHILDREN_FIRST), parse_filter(CHILDREN_FILTER)
        )
        assert [str(e.dn) for e in emulated] == native.dns()
        rows.append((size, len(native), 1, session.round_trips))
        # Navigational access: round trips grow with the candidate count.
        assert session.round_trips > size / 16
    record(
        benchmark,
        "E9b: Example 5.1 -- one L1 query vs navigational LDAP",
        ("entries", "answer", "L1 queries", "LDAP round trips"),
        rows,
    )
    benchmark.pedantic(lambda: _engines(1_000).run(CHILDREN_QUERY), rounds=3, iterations=1)
