"""E10 (Section 8.1): why L1 keeps p/c despite {ac, dc} subsuming them.

``(p Q1 Q2)`` equals ``(ac Q1 Q2 (null-dn ? sub ? objectClass=*))``, but
the rewriting drags the *whole directory instance* in as the third
operand.  With selective (index-backed) operands the direct p costs a few
page accesses regardless of directory size, while the ac rewriting scans
everything -- "a very expensive evaluation as written, since our
algorithms have I/O complexity linear in the size of the inputs".
"""

from repro.engine import QueryEngine
from repro.workload import balanced_instance

from ._util import record

SIZES = (1_000, 2_000, 4_000, 8_000)

# In balanced_instance, entry e5's parent is e1 ((5-1)//4): a selective,
# deterministic parent/child pair at every size.
P_QUERY = "(p ( ? sub ? name=e5) ( ? sub ? name=e1))"
AC_QUERY = "(ac ( ? sub ? name=e5) ( ? sub ? name=e1) ( ? sub ? objectClass=*))"


def _cost(query, size):
    instance = balanced_instance(size, fanout=4, seed=10)
    engine = QueryEngine.from_instance(
        instance, page_size=16, buffer_pages=8, string_indices=("name",)
    )
    engine.pager.flush()
    result = engine.run(query)
    return result.dns(), result.io.logical_reads + result.io.logical_writes


def test_e10_ac_rewriting_cost(benchmark):
    rows = []
    for size in SIZES:
        p_dns, p_cost = _cost(P_QUERY, size)
        ac_dns, ac_cost = _cost(AC_QUERY, size)
        assert p_dns == ac_dns  # Theorem 8.2(d): same answers
        assert len(p_dns) == 1  # e5 has parent e1
        rows.append((size, p_cost, ac_cost, round(ac_cost / max(p_cost, 1), 1)))
    record(
        benchmark,
        "E10: (p Q1 Q2) vs the ac rewriting with whole-instance operand",
        ("entries", "p I/O", "ac I/O", "blow-up"),
        rows,
    )
    # p stays flat; the rewriting grows with the directory.
    assert rows[-1][1] <= 2 * rows[0][1] + 4
    assert rows[-1][2] > 4 * rows[0][2] / 2
    assert rows[-1][3] > 5 * rows[0][3]
    benchmark.pedantic(lambda: _cost(AC_QUERY, 2_000), rounds=3, iterations=1)
