"""E19 (extension): tree-shape sensitivity of the stack algorithms.

The linear bound of Theorem 5.1 is shape-independent: a 300-deep chain
(the stack holds everything, spilling through the paged stack), a flat
star (the stack never exceeds depth 2) and a bushy balanced tree must all
cost the same I/O per entry, within constants.
"""

from repro.engine.hsagg import hierarchical_select
from repro.model.dn import ROOT_DN
from repro.model.instance import DirectoryInstance
from repro.storage.pager import Pager
from repro.storage.runs import run_from_iterable
from repro.workload import balanced_instance, synthetic_schema

from ._util import record

SIZE = 4_000


def _chain(size):
    instance = DirectoryInstance(synthetic_schema())
    dn = ROOT_DN
    for index in range(size):
        dn = dn.child("name=c%06d" % index)
        instance.add(dn, ["node"], name="c%06d" % index,
                     kind="alpha" if index % 2 == 0 else "beta")
    return instance


def _star(size):
    instance = DirectoryInstance(synthetic_schema())
    root = ROOT_DN.child("name=root")
    instance.add(root, ["node"], name="root", kind="alpha")
    for index in range(size - 1):
        instance.add(root.child("name=s%06d" % index), ["node"],
                     name="s%06d" % index,
                     kind="alpha" if index % 2 == 0 else "beta")
    return instance


SHAPES = {
    "chain (depth=n)": _chain,
    "star (depth=2)": _star,
    "balanced (fanout=4)": lambda size: balanced_instance(size, fanout=4, seed=19),
}


def _cost(instance):
    entries = list(instance)
    alphas = [e for e in entries if "alpha" in map(str, e.values("kind"))]
    betas = [e for e in entries if "beta" in map(str, e.values("kind"))]
    pager = Pager(page_size=16, buffer_pages=4)
    first = run_from_iterable(pager, alphas)
    second = run_from_iterable(pager, betas)
    pager.flush()
    before = pager.stats.snapshot()
    result = hierarchical_select(pager, "a", first, second)
    delta = pager.stats.since(before)
    return len(result), delta.logical_reads + delta.logical_writes


def test_e19_shape_independence(benchmark):
    rows = []
    per_entry = {}
    for label, factory in SHAPES.items():
        selected, logical = _cost(factory(SIZE))
        per_entry[label] = logical / SIZE
        rows.append((label, SIZE, selected, logical, round(logical / SIZE, 3)))
    record(
        benchmark,
        "E19: ancestors over three extreme tree shapes (n=%d)" % SIZE,
        ("shape", "entries", "selected", "logical I/O", "I/O per entry"),
        rows,
    )
    # Shape-independence: the costliest shape is within a small constant of
    # the cheapest (the chain pays the stack spill, nothing more).
    assert max(per_entry.values()) <= 4 * min(per_entry.values())
    benchmark.pedantic(lambda: _cost(_chain(1_000)), rounds=2, iterations=1)
