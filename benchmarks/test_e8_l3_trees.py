"""E8 (Theorem 8.4): L3 query trees (embedded references) evaluate in
O(|Q| * (|L|/B) m log(|L|/B m)) -- near-linear with a log factor, never
quadratic."""

from repro.engine import QueryEngine
from repro.workload import balanced_instance

from ._util import growth_ratios, record

SIZES = (1_000, 2_000, 4_000, 8_000)

QUERY = (
    "(vd (g ( ? sub ? objectClass=node) count(ref) >= 1)"
    "    (d ( ? sub ? kind=alpha) ( ? sub ? level<9))"
    "    ref)"
)


def _cost(size):
    instance = balanced_instance(size, fanout=4, seed=8, ref_density=0.6)
    engine = QueryEngine.from_instance(instance, page_size=16, buffer_pages=8)
    engine.pager.flush()
    result = engine.run(QUERY)
    logical = result.io.logical_reads + result.io.logical_writes
    return len(result), logical


def test_e8_l3_tree_nlogn(benchmark):
    rows = []
    costs = []
    for size in SIZES:
        selected, logical = _cost(size)
        costs.append(logical)
        rows.append((size, selected, logical, round(logical / size, 3)))
    for ratio in growth_ratios(SIZES, costs):
        assert ratio < 2.7, ratio  # N log N shape, not quadratic
    record(
        benchmark,
        "E8: L3 query tree (vd over g/d) I/O vs directory size",
        ("entries", "selected", "logical I/O", "I/O per entry"),
        rows,
    )
    benchmark.pedantic(lambda: _cost(2_000), rounds=3, iterations=1)
