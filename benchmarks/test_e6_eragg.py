"""E6 (Theorem 7.1 / Figure 3): ComputeERAgg costs
O(|L1|/B + (|L2| m / B) log(|L2| m / B)) -- near-linear with a log factor
from the pair-list sort -- while the naive join is quadratic."""

from repro.engine.eragg import embedded_ref_select
from repro.engine.naive import naive_embedded_ref_select
from repro.query.parser import parse_aggsel

from ._util import (
    as_runs,
    assert_superlinear,
    fresh_pager,
    growth_ratios,
    measure_io,
    operand_lists,
    record,
)

SIZES = (1_000, 2_000, 4_000, 8_000)
NAIVE_SIZES = (250, 500, 1_000)
MAX_FILTER = parse_aggsel("count($2)=max(count($2))")


def _cost(op, size, agg_filter=None):
    _instance, subsets = operand_lists(seed=6, size=size)
    pager = fresh_pager()
    first, second = as_runs(pager, subsets)
    result, logical, _physical = measure_io(
        pager,
        lambda: embedded_ref_select(pager, op, first, second, "ref", agg_filter),
    )
    return len(result), logical


def _naive_cost(op, size):
    _instance, subsets = operand_lists(seed=6, size=size)
    pager = fresh_pager()
    first, second = as_runs(pager, subsets)
    _result, logical, _physical = measure_io(
        pager, lambda: naive_embedded_ref_select(pager, op, first, second, "ref")
    )
    return logical


def test_e6_eragg_nlogn_io(benchmark):
    rows = []
    for op in ("vd", "dv"):
        costs = []
        for size in SIZES:
            selected, logical = _cost(op, size)
            costs.append(logical)
            rows.append((op, size, selected, logical, round(logical / size, 3)))
        # N log N: each doubling multiplies cost by < 2.6 (2 x log creep),
        # never the 4x of a quadratic algorithm.
        for ratio in growth_ratios(SIZES, costs):
            assert ratio < 2.6, ratio
    record(
        benchmark,
        "E6a: ComputeERAgg I/O vs input size",
        ("op", "entries", "selected", "logical I/O", "I/O per entry"),
        rows,
    )
    benchmark.pedantic(lambda: _cost("dv", 2_000), rounds=3, iterations=1)


def test_e6_figure3_aggregate(benchmark):
    rows = []
    for size in SIZES[:3]:
        selected, logical = _cost("dv", size, MAX_FILTER)
        rows.append((size, selected, logical))
    record(
        benchmark,
        "E6b: dv with count($2)=max(count($2)) (Figure 3 exactly)",
        ("entries", "selected", "logical I/O"),
        rows,
    )
    benchmark.pedantic(lambda: _cost("dv", 1_000, MAX_FILTER), rounds=3, iterations=1)


def test_e6_naive_quadratic(benchmark):
    rows = []
    naive_costs = []
    for size in NAIVE_SIZES:
        naive = _naive_cost("dv", size)
        _selected, smart = _cost("dv", size)
        naive_costs.append(naive)
        rows.append((size, naive, smart, round(naive / max(smart, 1), 1)))
    assert_superlinear(NAIVE_SIZES, naive_costs)
    record(
        benchmark,
        "E6c: naive vs sort-merge embedded references",
        ("entries", "naive I/O", "sort-merge I/O", "speedup"),
        rows,
    )
    benchmark.pedantic(lambda: _naive_cost("dv", 250), rounds=2, iterations=1)
