"""E13 (Section 4.2): the boolean operators are single co-scans -- linear
I/O, sorted output preserved for the operators above."""

from repro.engine.merge import boolean_merge

from ._util import (
    as_runs,
    assert_linear,
    fresh_pager,
    measure_io,
    operand_lists,
    record,
)

SIZES = (2_000, 4_000, 8_000, 16_000)


def _cost(op, size):
    _instance, subsets = operand_lists(seed=13, size=size)
    pager = fresh_pager()
    left, right = as_runs(pager, subsets)
    result, logical, _physical = measure_io(
        pager, lambda: boolean_merge(pager, op, left, right)
    )
    input_pages = left.page_count + right.page_count
    return len(result), logical, input_pages


def test_e13_boolean_linear(benchmark):
    rows = []
    for op in ("and", "or", "diff"):
        costs = []
        for size in SIZES:
            selected, logical, input_pages = _cost(op, size)
            costs.append(logical)
            rows.append((op, size, selected, logical,
                         round(logical / input_pages, 2)))
            # One pass over inputs plus the output write.
            assert logical <= input_pages + selected / 16 + 3
        assert_linear(SIZES, costs)
    record(
        benchmark,
        "E13: boolean merge I/O vs input size",
        ("op", "entries", "result", "logical I/O", "I/O per input page"),
        rows,
    )
    benchmark.pedantic(lambda: _cost("or", 4_000), rounds=3, iterations=1)
