"""E5 (Theorem 6.2 / Figure 6): structural aggregate selection stays linear
for every hierarchical operator and several aggregate filters, including
the global-maximum filter of Figure 6 (count($2)=max(count($2)))."""

from repro.engine.hsagg import hierarchical_select
from repro.query.parser import parse_aggsel

from ._util import (
    as_runs,
    assert_linear,
    fresh_pager,
    measure_io,
    operand_lists,
    record,
)

SIZES = (1_000, 2_000, 4_000)

FILTERS = {
    "count>2": parse_aggsel("count($2) > 2"),
    "count=max(count)": parse_aggsel("count($2)=max(count($2))"),
    "min(w)<=50": parse_aggsel("min($2.weight) <= 50"),
}


def _cost(op, agg_filter, size):
    lists = 3 if op in ("ac", "dc") else 2
    _instance, subsets = operand_lists(seed=5, size=size, lists=lists)
    pager = fresh_pager()
    runs = as_runs(pager, subsets)
    third = runs[2] if lists == 3 else None
    result, logical, _physical = measure_io(
        pager,
        lambda: hierarchical_select(pager, op, runs[0], runs[1], third, agg_filter),
    )
    return len(result), logical


def test_e5_all_operators_linear(benchmark):
    rows = []
    agg_filter = FILTERS["count=max(count)"]
    for op in ("p", "c", "a", "d", "ac", "dc"):
        costs = []
        for size in SIZES:
            selected, logical = _cost(op, agg_filter, size)
            costs.append(logical)
            rows.append((op, size, selected, logical, round(logical / size, 3)))
        assert_linear(SIZES, costs)
    record(
        benchmark,
        "E5a: ComputeHSAgg with count($2)=max(count($2))",
        ("op", "entries", "selected", "logical I/O", "I/O per entry"),
        rows,
    )
    benchmark.pedantic(lambda: _cost("d", agg_filter, 2_000), rounds=3, iterations=1)


def test_e5_filter_variety_linear(benchmark):
    rows = []
    for label, agg_filter in FILTERS.items():
        costs = []
        for size in SIZES:
            selected, logical = _cost("d", agg_filter, size)
            costs.append(logical)
            rows.append((label, size, selected, logical))
        assert_linear(SIZES, costs)
    record(
        benchmark,
        "E5b: descendants with different aggregate filters",
        ("filter", "entries", "selected", "logical I/O"),
        rows,
    )
    benchmark.pedantic(
        lambda: _cost("d", FILTERS["min(w)<=50"], 2_000), rounds=3, iterations=1
    )
