"""E26 (extension): the workload observability plane.

Three claims, deterministic except the (gate-skipped) wall columns:

1. *Instrumentation is free in the model.*  The same Zipf stream with the
   digest table and heat map enabled vs disabled performs **identical**
   logical page accesses and returns identical results -- observing the
   workload never perturbs it.  Wall-clock overhead is reported alongside
   and must stay small.
2. *The plane identifies the hot set.*  Under Zipf(1.2) skew the digest's
   top row is exactly the stream's most frequent fingerprint with its
   exact call count, and ``hottest(1)`` is exactly the subtree prefix
   that absorbed the most reads -- the signal ROADMAP item 3's shard
   placement consumes.
3. *Alerting is deterministic.*  A burst/idle script under an injected
   clock produces the same firing -> resolved transitions, with the same
   sample timestamps, on every run.
"""

import time
from collections import Counter

from repro.cache import fingerprint
from repro.obs.alerts import parse_rule
from repro.obs.metrics import MetricsRegistry
from repro.server import DirectoryService
from repro.workload import ZipfQueryStream, random_instance

from ._util import record

INSTANCE_SEED = 26
INSTANCE_SIZE = 400
STREAM_LENGTH = 240
DISTINCT = 24
SKEW = 1.2
HEAT_DEPTH = 2


def make_service(obs: bool, cache_bytes: int = 8 * 1024 * 1024):
    instance = random_instance(INSTANCE_SEED, size=INSTANCE_SIZE)
    return instance, DirectoryService(
        instance,
        page_size=16,
        buffer_pages=8,
        cache_bytes=cache_bytes,
        metrics=MetricsRegistry(),
        digest_capacity=256 if obs else 0,
        heatmap_depth=HEAT_DEPTH if obs else 0,
    )


def make_stream(instance):
    return ZipfQueryStream(
        instance, distinct=DISTINCT, skew=SKEW, seed=7
    ).take(STREAM_LENGTH)


def run_stream(service, queries):
    """Replay the stream; return (logical page accesses, total entries
    returned, wall seconds)."""
    pager = service.directory.store.pager
    pager.flush()
    before = pager.stats.snapshot()
    returned = 0
    start = time.perf_counter()
    for query in queries:
        returned += service.search(query).total_size
    wall = time.perf_counter() - start
    delta = pager.stats.since(before)
    return delta.logical_reads + delta.logical_writes, returned, wall


def test_e26_observation_does_not_perturb_the_workload(benchmark):
    instance, observed = make_service(obs=True)
    _, bare = make_service(obs=False)
    queries = make_stream(instance)
    io_obs, returned_obs, wall_obs = run_stream(observed, queries)
    io_bare, returned_bare, wall_bare = run_stream(bare, queries)
    rows = [
        ("observed", io_obs, returned_obs, len(observed.digest),
         len(observed.heatmap), round(wall_obs * 1e3, 2)),
        ("bare", io_bare, returned_bare, 0, 0, round(wall_bare * 1e3, 2)),
        ("io delta", io_obs - io_bare, returned_obs - returned_bare,
         "", "", ""),
    ]
    record(
        benchmark,
        "E26: Zipf(%g) stream, digest+heatmap on vs off "
        "(identical logical I/O)" % SKEW,
        ("mode", "logical I/O", "entries returned", "digest rows",
         "heat cells", "wall ms"),
        rows,
    )
    assert io_obs == io_bare, (
        "instrumentation changed the model cost: %d vs %d" % (io_obs, io_bare)
    )
    assert returned_obs == returned_bare
    assert observed.digest.observed == STREAM_LENGTH
    # Wall overhead budget: generous (shared runners), but a pathological
    # slowdown -- say, lock contention on the search path -- must fail.
    floor = max(wall_bare, 1e-3)
    assert wall_obs <= 2.0 * floor, (
        "instrumentation overhead too high: %.1fms vs %.1fms"
        % (wall_obs * 1e3, wall_bare * 1e3)
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e26_digest_and_heatmap_identify_the_hot_set(benchmark):
    # Cache off: every search reaches the engine, so heat counters mirror
    # the stream exactly and the expected counts are pure arithmetic.
    # depth=0 keeps every pool query a single atomic leaf, so each search
    # is exactly one heat-map read at its base.
    instance, service = make_service(obs=True, cache_bytes=0)
    queries = ZipfQueryStream(
        instance, distinct=DISTINCT, skew=SKEW, seed=7, depth=0
    ).take(STREAM_LENGTH)
    run_stream(service, queries)

    expected_calls = Counter(fingerprint(q) for q in queries)
    expected_reads = Counter(q.base.key()[:HEAT_DEPTH] for q in queries)
    (top_key, top_calls), = expected_calls.most_common(1)

    digest_top = service.digest.top(3)
    heat_top = service.heatmap.hottest(3, by="reads")
    rows = [
        ("digest rank %d" % (i + 1), row.calls,
         expected_calls[row.key], row.text[:48])
        for i, row in enumerate(digest_top)
    ] + [
        ("heat rank %d" % (i + 1), cell["reads_total"],
         expected_reads[max(expected_reads, key=expected_reads.get)]
         if i == 0 else "", cell["subtree"])
        for i, cell in enumerate(heat_top)
    ]
    record(
        benchmark,
        "E26: hot-set identification under Zipf(%g) "
        "(top digest rows and heat cells vs stream truth)" % SKEW,
        ("rank", "observed", "expected", "shape / subtree"),
        rows,
    )
    # The digest's heaviest row is the stream's most frequent fingerprint,
    # with its exact call count -- and every row is exact.
    assert digest_top[0].key == top_key
    assert digest_top[0].calls == top_calls
    for row in digest_top:
        assert row.calls == expected_calls[row.key]
    # The hottest subtree is the one the stream read most, exactly.
    hottest_key = max(expected_reads, key=lambda k: (expected_reads[k], k))
    by_label = {c["subtree"]: c for c in service.heatmap.hottest(0)}
    for key, reads in expected_reads.items():
        label = ", ".join(reversed(key)) if key else "(root)"
        assert by_label[label]["reads_total"] == reads
    assert heat_top[0]["reads_total"] == expected_reads[hottest_key]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e26_alerts_fire_and_resolve_deterministically(benchmark):
    def run():
        instance, service = make_service(obs=True)
        clock = {"now": 0.0}
        history = service.enable_workload_history(
            min_interval_s=0.0, clock=lambda: clock["now"]
        )
        engine = service.attach_alerts(
            [parse_rule("rate(repro_searches_total, 30) > 5", name="burst")]
        )
        # Burst: 120 searches across 10 injected seconds (12/s), then
        # idle: the clock advances past the window and the rule resolves.
        for query in make_stream(instance)[:120]:
            service.search(query)
            clock["now"] += 10.0 / 120.0
        for _ in range(3):
            clock["now"] += 30.0
            history.sample()
            engine.evaluate()
        return [
            (t["rule"], t["to"], round(t["ts"], 3),
             round(t["value"], 2) if t["value"] is not None else None)
            for t in engine.status()["transitions"]
        ]

    first, second = run(), run()
    rows = [
        (rule, to, ts, value) for rule, to, ts, value in first
    ] + [("replay identical", first == second, "", "")]
    record(
        benchmark,
        "E26: alert transitions under an injected clock (burst then idle)",
        ("rule", "transition", "at injected s", "value"),
        rows,
    )
    assert first == second, "alert transitions are not deterministic"
    assert [(to) for _, to, _, _ in first] == ["firing", "resolved"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
