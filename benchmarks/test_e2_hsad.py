"""E2 (Theorem 5.1 / Figure 4): ComputeHSAD (ancestors/descendants) runs in
linear I/O, independent of witness multiplicity (an entry can have many
ancestors, unlike parents)."""

from repro.engine.hsagg import hierarchical_select

from ._util import (
    as_runs,
    assert_linear,
    fresh_pager,
    measure_io,
    operand_lists,
    record,
)

SIZES = (1_000, 2_000, 4_000, 8_000)


def _cost(op, size, seed=2):
    _instance, subsets = operand_lists(seed=seed, size=size)
    pager = fresh_pager()
    first, second = as_runs(pager, subsets)
    result, logical, physical = measure_io(
        pager, lambda: hierarchical_select(pager, op, first, second)
    )
    return len(result), logical, physical


def test_e2_hsad_linear_io(benchmark):
    rows = []
    for op in ("a", "d"):
        costs = []
        for size in SIZES:
            selected, logical, physical = _cost(op, size)
            costs.append(logical)
            rows.append((op, size, selected, logical, physical, round(logical / size, 3)))
        assert_linear(SIZES, costs)
    record(
        benchmark,
        "E2: ComputeHSAD I/O vs input size",
        ("op", "entries", "selected", "logical I/O", "physical I/O", "I/O per entry"),
        rows,
    )
    benchmark.pedantic(lambda: _cost("a", 2_000), rounds=3, iterations=1)
