"""E15 (extension; DESIGN.md §5): the optimizer ablation.

Two effects are measured against the unoptimised engine:

- the R1 rewrite (Section 8.1's identity run backwards) removes the
  whole-instance third operand from ``ac``/``dc`` nodes;
- cost-based access-path choice uses secondary indices for selective
  leaves and clustered scans for unselective ones, never losing to a
  fixed policy.
"""

from repro.engine import QueryEngine
from repro.engine.optimizer import PlannedEngine
from repro.storage.store import DirectoryStore
from repro.workload import balanced_instance

from ._util import record

SIZES = (1_000, 2_000, 4_000)

R1_QUERY = "(ac ( ? sub ? name=e5) ( ? sub ? name=e1) ( ? sub ? objectClass=*))"
SELECTIVE = "( ? sub ? name=e123)"
UNSELECTIVE = "( ? sub ? kind=alpha)"


def _stores(size):
    instance = balanced_instance(size, fanout=4, seed=15)
    store = DirectoryStore.from_instance(instance, page_size=16, buffer_pages=8)
    store.build_indices(int_attributes=("weight",), string_attributes=("name", "kind"))
    return store


def _logical(result):
    return result.io.logical_reads + result.io.logical_writes


def test_e15_rewrite_ablation(benchmark):
    rows = []
    for size in SIZES:
        store = _stores(size)
        planned = PlannedEngine(store)
        plain = QueryEngine(store, use_indices=False)
        optimised = planned.run(R1_QUERY)
        unoptimised = plain.run(R1_QUERY)
        assert optimised.dns() == unoptimised.dns()
        rows.append((size, _logical(optimised), _logical(unoptimised),
                     round(_logical(unoptimised) / max(_logical(optimised), 1), 1)))
    record(
        benchmark,
        "E15a: R1 rewrite ablation (ac with whole-instance operand)",
        ("entries", "optimised I/O", "unoptimised I/O", "saving"),
        rows,
    )
    assert rows[-1][3] > rows[0][3]  # the saving grows with the directory
    benchmark.pedantic(lambda: PlannedEngine(_stores(1_000)).run(R1_QUERY),
                       rounds=2, iterations=1)


def test_e15_access_path_ablation(benchmark):
    rows = []
    for size in SIZES:
        store = _stores(size)
        planned = PlannedEngine(store)
        always_scan = QueryEngine(store, use_indices=False)
        always_index = QueryEngine(store, use_indices=True)
        for label, query in (("selective", SELECTIVE), ("unselective", UNSELECTIVE)):
            planned_cost = _logical(planned.run(query))
            scan_cost = _logical(always_scan.run(query))
            index_cost = _logical(always_index.run(query))
            rows.append((size, label, planned_cost, scan_cost, index_cost))
            # Cost-based choice is never beaten badly by either fixed policy.
            assert planned_cost <= min(scan_cost, index_cost) * 1.2 + 2
    record(
        benchmark,
        "E15b: access-path choice vs fixed policies",
        ("entries", "leaf", "planned I/O", "always-scan I/O", "always-index I/O"),
        rows,
    )
    benchmark.pedantic(lambda: PlannedEngine(_stores(1_000)).run(SELECTIVE),
                       rounds=2, iterations=1)
