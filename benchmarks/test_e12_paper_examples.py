"""E12 (Figures 1, 11, 12 + Sections 5--7): the reconstructed sample
directories answer every worked query in the paper; timed end-to-end."""

from repro.apps import qos, tops

from ._util import record

QOS_QUERIES = {
    "Ex 5.2 profiles-in-use": (
        "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
        "   (dc=att, dc=com ? sub ? ou=networkPolicies))"
    ),
    "Ex 5.3 smtp-subnets": (
        "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
        "    (& (dc=att, dc=com ? sub ? SourcePort=25)"
        "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
        "    (dc=att, dc=com ? sub ? objectClass=dcObject))"
    ),
    "Ex 6.1 multi-period": (
        "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
        "   count(SLAPVPRef) > 1)"
    ),
    "Ex 7.1 smtp-policies": (
        "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
        "    (& (dc=att, dc=com ? sub ? SourcePort=25)"
        "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
        "    SLATPRef)"
    ),
    "Ex 7.1+ top-action": (
        "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
        "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
        "           (& (dc=att, dc=com ? sub ? SourcePort=25)"
        "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
        "           SLATPRef)"
        "       min(SLARulePriority)=min(min(SLARulePriority)))"
        "    SLADSActRef)"
    ),
}

EXPECTED_LEADERS = {
    "Ex 5.3 smtp-subnets": "dc=research",
    "Ex 6.1 multi-period": "SLAPolicyName=dso",
    "Ex 7.1 smtp-policies": "SLAPolicyName=mail",
    "Ex 7.1+ top-action": "DSActionName=allowMail",
}


def test_e12_qos_examples(benchmark):
    directory = qos.build_paper_fragment()
    engine = directory.engine(page_size=8)
    rows = []
    for label, query in QOS_QUERIES.items():
        result = engine.run(query)
        rows.append((label, len(result), result.io.logical_reads))
        if label in EXPECTED_LEADERS:
            assert result.dns()[0].startswith(EXPECTED_LEADERS[label]), label
    record(
        benchmark,
        "E12a: Figure 12 worked queries",
        ("example", "answer size", "logical reads"),
        rows,
    )

    def run_all():
        for query in QOS_QUERIES.values():
            engine.run(query)

    benchmark(run_all)


def test_e12_tops_call_resolution(benchmark):
    directory = tops.build_paper_fragment()
    engine = directory.engine(page_size=8)
    rows = []
    cases = [
        ("office hours", tops.CallRequest("jag", 1000, 2), ["9733608750", "9733608751", "9733608798"]),
        ("sunday", tops.CallRequest("jag", 1000, 7), ["9733608799"]),
        ("late night", tops.CallRequest("jag", 2300, 2), []),
    ]
    for label, request, expected in cases:
        appearances = tops.resolve_call(directory, request, engine)
        numbers = [e.first("CANumber") for e in appearances]
        assert numbers == expected, label
        rows.append((label, ", ".join(numbers) or "(unreachable)"))
    record(benchmark, "E12b: Figure 11 call resolution", ("case", "numbers"), rows)

    benchmark(
        lambda: tops.resolve_call(directory, tops.CallRequest("jag", 1000, 2), engine)
    )
