"""E14 (our ablation; DESIGN.md section 5): sensitivity of the stack
algorithms to the blocking factor B and the buffer-pool size.

Expected shape: logical I/O scales ~1/B (bigger pages, fewer transfers);
physical I/O approaches the logical cost as the pool shrinks but
correctness and the linear trend are unaffected."""

from repro.engine.hsagg import hierarchical_select
from repro.storage.pager import Pager
from repro.storage.runs import run_from_iterable

from ._util import measure_io, operand_lists, record

SIZE = 4_000


def _cost(page_size, buffer_pages):
    _instance, subsets = operand_lists(seed=14, size=SIZE)
    pager = Pager(page_size=page_size, buffer_pages=buffer_pages)
    first = run_from_iterable(pager, subsets[0])
    second = run_from_iterable(pager, subsets[1])
    result, logical, physical = measure_io(
        pager, lambda: hierarchical_select(pager, "d", first, second)
    )
    return len(result), logical, physical


def test_e14_blocking_factor(benchmark):
    rows = []
    reference = None
    for page_size in (4, 8, 16, 32, 64):
        selected, logical, physical = _cost(page_size, buffer_pages=6)
        if reference is None:
            reference = (selected, logical)
        assert selected == reference[0]  # answers independent of B
        rows.append((page_size, selected, logical, physical,
                     round(reference[1] / logical, 2)))
    record(
        benchmark,
        "E14a: blocking factor sweep (descendants, n=%d)" % SIZE,
        ("B", "selected", "logical I/O", "physical I/O", "speedup vs B=4"),
        rows,
    )
    # Quadrupling B from 4 to 16 should cut logical I/O ~4x (within slack).
    b4 = next(row for row in rows if row[0] == 4)
    b16 = next(row for row in rows if row[0] == 16)
    assert b4[2] / b16[2] > 2.5
    benchmark.pedantic(lambda: _cost(16, 6), rounds=3, iterations=1)


def test_e14_buffer_pool(benchmark):
    rows = []
    logicals = set()
    for buffer_pages in (2, 4, 8, 32):
        selected, logical, physical = _cost(16, buffer_pages)
        logicals.add(logical)
        rows.append((buffer_pages, selected, logical, physical))
    assert len(logicals) == 1  # model-level cost is pool-independent
    record(
        benchmark,
        "E14b: buffer pool sweep (descendants, n=%d, B=16)" % SIZE,
        ("pool pages", "selected", "logical I/O", "physical I/O"),
        rows,
    )
    # Physical I/O decreases (weakly) as the pool grows.
    physicals = [row[3] for row in rows]
    assert physicals[0] >= physicals[-1]
    benchmark.pedantic(lambda: _cost(16, 2), rounds=3, iterations=1)
