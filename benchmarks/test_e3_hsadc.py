"""E3 (Theorem 5.1 / Figure 5): the path-constrained ComputeHSADc runs in
I/O linear in |L1| + |L2| + |L3|."""

from repro.engine.hsagg import hierarchical_select

from ._util import (
    as_runs,
    assert_linear,
    fresh_pager,
    measure_io,
    operand_lists,
    record,
)

SIZES = (1_000, 2_000, 4_000, 8_000)


def _cost(op, size, seed=3):
    _instance, subsets = operand_lists(seed=seed, size=size, lists=3)
    pager = fresh_pager()
    first, second, third = as_runs(pager, subsets)
    result, logical, physical = measure_io(
        pager, lambda: hierarchical_select(pager, op, first, second, third)
    )
    return len(result), logical, physical


def test_e3_hsadc_linear_io(benchmark):
    rows = []
    for op in ("ac", "dc"):
        costs = []
        for size in SIZES:
            selected, logical, physical = _cost(op, size)
            costs.append(logical)
            rows.append((op, size, selected, logical, physical, round(logical / size, 3)))
        assert_linear(SIZES, costs)
    record(
        benchmark,
        "E3: ComputeHSADc I/O vs input size (three operands)",
        ("op", "entries", "selected", "logical I/O", "physical I/O", "I/O per entry"),
        rows,
    )
    benchmark.pedantic(lambda: _cost("dc", 2_000), rounds=3, iterations=1)
