"""E24 (extension): the durable write path under a mixed read/write load.

Three claims, all deterministic (fixed seeds, no wall-clock fields):

1. *Incremental cache maintenance pays.*  On a Zipf read stream with
   interleaved point writes, patching cached results in place retains at
   least 2x the resident cache bytes of wholesale invalidation -- and
   every cached answer stays bit-identical to an uncached evaluation of
   the same query at the same point in the update sequence.
2. *Group commit amortises.*  Batching k appends per sync divides the
   flush count by k exactly; the log contents are byte-identical either
   way.
3. *Recovery is deterministic.*  A seeded crash yields the same
   recovered record count and head lsn on every reopen.
"""

import random

from repro.model.dn import DN
from repro.model.entry import Entry
from repro.server import DirectoryService
from repro.txn.durable import DurableDirectory
from repro.txn.records import ChangeRecord
from repro.txn.wal import CrashPlan, SimulatedCrash, WriteAheadLog, scan_wal
from repro.workload import ZipfQueryStream, random_instance

from ._util import record

INSTANCE_SEED = 24
INSTANCE_SIZE = 400
STREAM_LENGTH = 240
DISTINCT = 24
WRITE_RATE = 0.15
CACHE_BYTES = 8 * 1024 * 1024


def make_service(maintenance: str, cache_bytes: int = CACHE_BYTES):
    instance = random_instance(INSTANCE_SEED, size=INSTANCE_SIZE)
    return instance, DirectoryService(
        instance,
        page_size=16,
        buffer_pages=8,
        cache_bytes=cache_bytes,
        cache_maintenance=maintenance,
    )


def make_script(instance):
    """The deterministic interleaved operation list both services replay:
    Zipf-popular reads with seeded point writes mixed in."""
    queries = ZipfQueryStream(
        instance, distinct=DISTINCT, skew=1.0, seed=7
    ).take(STREAM_LENGTH)
    victims = [e.dn for e in instance if e.classes & {"node", "item"}]
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    rng = random.Random(99)
    script = []
    fresh = 0
    for query in queries:
        script.append(("read", query))
        if rng.random() < WRITE_RATE:
            if rng.random() < 0.7:
                dn = rng.choice(victims)
                script.append(("modify", dn, {"weight": [rng.randint(0, 100)]}))
            else:
                root = rng.choice(roots)
                name = "e24w%d" % fresh
                fresh += 1
                script.append(("add", root.child("name=%s" % name), name))
    return script


def replay(service, reference, script):
    """Run the script; sample resident cache bytes after every operation
    and differentially check each cached hit against the uncached
    reference service (which replays the same writes)."""
    samples = []
    hits = exact = 0
    for op in script:
        if op[0] == "read":
            result = service.search(op[1])
            expected = reference.search(op[1])
            assert result.code == expected.code == "success"
            if result.cached:
                hits += 1
                if result.dns() == expected.dns():
                    exact += 1
        elif op[0] == "modify":
            assert service.modify(op[1], replace=op[2]) == "success"
            assert reference.modify(op[1], replace=op[2]) == "success"
        else:
            _, dn, name = op
            assert service.add(dn, ["node"], name=name, kind="alpha") == "success"
            assert reference.add(dn, ["node"], name=name, kind="alpha") == "success"
        samples.append(service.cache.resident_bytes)
    return samples, hits, exact


def test_e24_incremental_retention(benchmark):
    rows = []
    averages = {}
    for maintenance in ("evict", "incremental"):
        instance, service = make_service(maintenance)
        _, reference = make_service(maintenance, cache_bytes=0)
        script = make_script(instance)
        samples, hits, exact = replay(service, reference, script)
        stats = service.cache_stats
        avg = sum(samples) // max(len(samples), 1)
        averages[maintenance] = avg
        assert hits == exact, (
            "%s: %d cached hits, only %d exact" % (maintenance, hits, exact)
        )
        rows.append(
            (
                maintenance,
                len(script),
                hits,
                exact,
                stats.patched,
                stats.invalidations,
                avg,
            )
        )
    ratio = averages["incremental"] / max(averages["evict"], 1)
    rows.append(("retention ratio", "", "", "", "", "", round(ratio, 2)))
    record(
        benchmark,
        "E24: resident cache bytes, incremental patching vs eviction "
        "(Zipf 1.0 reads, %d%% writes)" % int(WRITE_RATE * 100),
        ("mode", "ops", "hits", "exact", "patched", "invalidated",
         "avg resident bytes"),
        rows,
    )
    assert ratio >= 2.0, (
        "incremental maintenance should retain >=2x cached bytes, got %.2fx"
        % ratio
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _commit_log(tmpdir, group):
    """Write 64 records syncing every ``group`` appends; return the WAL."""
    path = "%s/wal_g%d.log" % (tmpdir, group)
    wal = WriteAheadLog(path, fsync=False)
    total = 64
    for lsn in range(1, total + 1):
        dn = DN.parse("name=n%d, dc=com" % lsn)
        wal.append(
            ChangeRecord("add", dn, entry=Entry(dn, ["node"], {}), lsn=lsn)
        )
        if lsn % group == 0:
            wal.sync(lsn)
    wal.close()
    return wal, path


def test_e24_group_commit_amortisation(benchmark, tmp_path):
    rows = []
    contents = []
    for group in (1, 2, 4, 8, 16):
        wal, path = _commit_log(str(tmp_path), group)
        records, valid_bytes, torn = scan_wal(path)
        assert not torn and len(records) == 64
        contents.append([r.lsn for r in records])
        rows.append((group, wal.appends, wal.flushes, valid_bytes))
        assert wal.flushes == 64 // group
    assert all(c == contents[0] for c in contents), (
        "batching must not change the log contents"
    )
    record(
        benchmark,
        "E24: group commit, 64 records at fixed batch sizes",
        ("records per sync", "appends", "flushes", "log bytes"),
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e24_crash_recovery_determinism(benchmark, tmp_path):
    rows = []
    for crash_at, torn_bytes in ((2, 0), (4, 13), (6, 200)):
        data_dir = tmp_path / ("crash_%d_%d" % (crash_at, torn_bytes))
        instance = random_instance(INSTANCE_SEED, size=60)
        directory = DurableDirectory.open(
            str(data_dir),
            instance,
            page_size=8,
            crash_plan=CrashPlan(crash_at, torn_bytes),
        )
        root = next(iter(instance.roots())).dn
        acked = 0
        for i in range(10):
            try:
                directory.add(
                    root.child("name=cr%d" % i), ["node"], name="cr%d" % i
                )
                acked += 1
            except SimulatedCrash:
                break
        outcomes = []
        for _ in range(2):
            reopened = DurableDirectory.open(str(data_dir), page_size=8)
            outcomes.append((reopened.recovered_records, reopened.head_lsn))
            for i in range(acked):
                assert reopened.lookup(root.child("name=cr%d" % i)) is not None
            reopened.close()
        assert outcomes[0] == outcomes[1], "reopen must be deterministic"
        recovered, head = outcomes[0]
        assert recovered >= acked
        rows.append((crash_at, torn_bytes, acked, recovered, head))
    record(
        benchmark,
        "E24: seeded crash recovery (acked commits always survive)",
        ("crash at flush", "torn bytes", "acked", "recovered", "head lsn"),
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
