"""Distributed evaluation (Section 8.3): the namespace split across
servers DNS-style, atomic sub-queries routed to their owners, results
shipped back and combined at the queried server.

Run:  python examples/distributed_directory.py
"""

from repro.apps import qos
from repro.dist import FederatedDirectory
from repro.ldapx import LDAPSession, emulate_l0
from repro.query import parse_query

# One logical policy directory covering two subnets plus headquarters.
directory = qos.QoSDirectory("dc=att, dc=com")
directory.instance.add(
    "dc=research, dc=att, dc=com", ["dcObject"], dc="research"
)
directory.instance.add(
    "dc=sales, dc=att, dc=com", ["dcObject"], dc="sales"
)
for subnet, port in (("research", 25), ("sales", 80)):
    base = "dc=%s, dc=att, dc=com" % subnet
    directory.instance.add(
        "ou=networkPolicies, %s" % base, ["organizationalUnit"], ou="networkPolicies"
    )
    directory.instance.add(
        "ou=trafficProfile, ou=networkPolicies, %s" % base,
        ["organizationalUnit"],
        ou="trafficProfile",
    )
    directory.instance.add(
        "TPName=%sWeb, ou=trafficProfile, ou=networkPolicies, %s" % (subnet, base),
        ["trafficProfile"],
        TPName="%sWeb" % subnet,
        SourcePort=port,
    )

# Three servers: headquarters owns dc=att,dc=com; the two subnets are
# delegated (the DNS-style split of Section 3.3).
federation = FederatedDirectory.partition(
    directory.instance,
    {
        "hq": ["dc=com", "dc=att, dc=com"],
        "research-server": ["dc=research, dc=att, dc=com"],
        "sales-server": ["dc=sales, dc=att, dc=com"],
    },
    page_size=8,
)

QUERY = (
    "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
    "   (dc=att, dc=com ? sub ? ou=networkPolicies))"
)


def main() -> None:
    print("servers:")
    for name, server in sorted(federation.servers.items()):
        print("  %-16s holds %3d entries  contexts=%s" % (
            name, server.entry_count(), [str(c) for c in server.contexts]))
    print()

    for at in ("hq", "research-server"):
        result = federation.query(at, QUERY)
        print("query issued at %s:" % at)
        for dn in result.dns():
            print("  ->", dn)
        print(
            "  network: %d messages, %d entries shipped\n"
            % (result.messages, result.entries_shipped)
        )

    # The same whole-directory query, if one server held everything, ships
    # nothing -- the delta is the price of distribution, which Section 8.3
    # keeps proportional to the *atomic results*, not the directory size.
    query = parse_query(QUERY)
    print("atomic leaves and their owning servers:")
    for leaf in query.atomic_leaves():
        owners = federation.owners_for_atomic(leaf)
        print("  %-60s -> %s" % (" ".join(str(leaf).split())[:58], ", ".join(owners)))


if __name__ == "__main__":
    main()
