"""QoS policy directory (Example 2.1 / Figure 12): the paper's worked
queries plus the packet-time decision path of a policy enforcement point.

Run:  python examples/qos_policy_lookup.py
"""

from repro.apps import qos

# The exact Figure 12 fragment: policy dso (priority 2, deny on weekends
# and Thanksgiving 1998) with exceptions fatt (FTP) and mail (SMTP).
directory = qos.build_paper_fragment()
engine = directory.engine(page_size=4, buffer_pages=2)

PAPER_QUERIES = [
    # Example 5.2: traffic profiles actually used under networkPolicies.
    ("Example 5.2  profiles used by network policies",
     "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
     "   (dc=att, dc=com ? sub ? ou=networkPolicies))"),
    # Example 5.3: subnets with profiles governing SMTP traffic (port 25).
    ("Example 5.3  subnets governing SMTP",
     "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
     "    (& (dc=att, dc=com ? sub ? SourcePort=25)"
     "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
     "    (dc=att, dc=com ? sub ? objectClass=dcObject))"),
    # Example 6.1: policies with more than one validity period.
    ("Example 6.1  policies with >1 validity period",
     "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
     "   count(SLAPVPRef) > 1)"),
    # Example 7.1: policies governing packets matching SMTP profiles.
    ("Example 7.1  policies referencing SMTP profiles",
     "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
     "    (& (dc=att, dc=com ? sub ? SourcePort=25)"
     "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
     "    SLATPRef)"),
    # Example 7.1 extended: the action of the highest-priority such policy.
    ("Example 7.1+  action of the highest-priority SMTP policy",
     "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
     "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
     "           (& (dc=att, dc=com ? sub ? SourcePort=25)"
     "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
     "           SLATPRef)"
     "       min(SLARulePriority)=min(min(SLARulePriority)))"
     "    SLADSActRef)"),
]


def main() -> None:
    print("=== the paper's worked queries (Sections 5-7) ===\n")
    for title, text in PAPER_QUERIES:
        result = engine.run(text)
        print(title)
        for dn in result.dns():
            print("  ->", dn)
        print("  (%d physical page I/Os, %d logical reads)\n"
              % (result.io.total, result.io.logical_reads))

    print("=== policy enforcement: packets against the directory ===\n")
    pdp = qos.PolicyDecisionPoint(directory, engine)
    packets = [
        ("weekend packet from 204.178.16.5",
         qos.PacketProfile("204.178.16.5", timestamp=19980704120000, day_of_week=6)),
        ("same, but FTP (exception fatt applies)",
         qos.PacketProfile("204.178.16.5", dest_port=21, protocol="tcp",
                           timestamp=19980704120000, day_of_week=6)),
        ("same, but SMTP (exception mail applies)",
         qos.PacketProfile("204.178.16.5", source_port=25, protocol="tcp",
                           timestamp=19980704120000, day_of_week=6)),
        ("Thanksgiving 1998 from the 207.140 subnet",
         qos.PacketProfile("207.140.3.4", timestamp=19981126120000, day_of_week=4)),
        ("weekday packet (no policy applies)",
         qos.PacketProfile("204.178.16.5", timestamp=19980706120000, day_of_week=1)),
    ]
    for title, packet in packets:
        actions = pdp.decide(packet)
        names = [action.first("DSActionName") for action in actions] or ["(default)"]
        print("%-48s -> %s" % (title, ", ".join(names)))

    print("\n=== static conflict detection ===\n")
    for first, second in qos.find_conflicts(directory):
        print(
            "conflict: %s vs %s (same priority, overlapping profiles, "
            "different actions, no exception relation)"
            % (first.first("SLAPolicyName"), second.first("SLAPolicyName"))
        )


if __name__ == "__main__":
    main()
