"""A tour of the expressiveness hierarchy LDAP < L0 < L1 < L2 < L3
(Theorem 8.1), on the paper's own separating examples.

Each stop shows a query the weaker language cannot express and what an
application stuck with the weaker language has to do instead (more round
trips, client-side work).

Run:  python examples/expressiveness_tour.py
"""

from repro import DirectoryInstance, DirectorySchema
from repro.engine import QueryEngine
from repro.filters.parser import parse_filter
from repro.ldapx import LDAPSession, emulate_children, emulate_l0
from repro.query import parse_query

schema = DirectorySchema()
schema.add_attribute("dc", "string")
schema.add_attribute("ou", "string")
schema.add_attribute("surName", "string")
schema.add_attribute("nQHP", "int")
schema.add_attribute("assistant", "distinguishedName")
schema.add_class("dcObject", {"dc"})
schema.add_class("organizationalUnit", {"ou"})
schema.add_class("person", {"surName", "nQHP", "assistant"})

inst = DirectoryInstance(schema)
inst.add("dc=com", ["dcObject"], dc="com")
inst.add("dc=att, dc=com", ["dcObject"], dc="att")
inst.add("dc=research, dc=att, dc=com", ["dcObject"], dc="research")
for unit, parent in (("labs", "dc=research, dc=att, dc=com"),
                     ("sales", "dc=att, dc=com"),
                     ("legal", "dc=att, dc=com")):
    inst.add("ou=%s, %s" % (unit, parent), ["organizationalUnit"], ou=unit)
people = {
    "jagadish": ("ou=labs, dc=research, dc=att, dc=com", 3),
    "srivastava": ("ou=labs, dc=research, dc=att, dc=com", 1),
    "jagadish2": ("ou=sales, dc=att, dc=com", 2),
    "milo": ("ou=sales, dc=att, dc=com", 1),
}
dns = {}
for name, (parent, qhps) in people.items():
    surname = "jagadish" if name.startswith("jagadish") else name
    entry = inst.add(
        "surName=%s, %s" % (surname, parent) if name != "jagadish2"
        else "surName=jagadish+nQHP=2, %s" % parent,
        ["person"], surName=surname, nQHP=qhps,
    )
    dns[name] = entry.dn
engine = QueryEngine.from_instance(inst, page_size=8)


def main() -> None:
    print("== LDAP < L0: set difference across bases (Example 4.1) ==")
    l0 = parse_query(
        "(- (dc=att, dc=com ? sub ? surName=jagadish)"
        "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))"
    )
    result = engine.run(l0)
    print("one L0 query ->", result.dns())
    session = LDAPSession(engine.store)
    entries = emulate_l0(session, l0)
    print(
        "same in LDAP  -> %s  via %d round trips, %d entries shipped"
        % ([str(e.dn) for e in entries], session.round_trips, session.entries_shipped)
    )

    print("\n== L0 < L1: units directly containing a jagadish (Example 5.1) ==")
    l1 = parse_query(
        "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
        "   (dc=att, dc=com ? sub ? surName=jagadish))"
    )
    print("one L1 query ->", engine.run(l1).dns())
    session = LDAPSession(engine.store)
    found = emulate_children(
        session,
        parse_query("(dc=att, dc=com ? sub ? objectClass=organizationalUnit)"),
        parse_filter("surName=jagadish"),
    )
    print(
        "navigational LDAP -> %s  via %d round trips"
        % ([str(e.dn) for e in found], session.round_trips)
    )

    print("\n== L1 < L2: subscribers with more than 2 QHPs (Example 6.2 shape) ==")
    l2 = parse_query("(g (dc=com ? sub ? objectClass=person) min(nQHP) > 2)")
    print("one L2 query ->", engine.run(l2).dns())
    print("(L1 can test witness existence but cannot count)")

    print("\n== L2 < L3: following embedded dn references ==")
    inst2 = engine.store  # reuse; add an assistant reference via a fresh engine
    l3 = parse_query(
        "(vd (dc=com ? sub ? objectClass=person)"
        "    (dc=research, dc=att, dc=com ? sub ? objectClass=person) assistant)"
    )
    print("one L3 query ->", engine.run(l3).dns() or "(no references in this toy data)")
    print("(L2's operators see only the namespace hierarchy, not dn-valued attributes)")


if __name__ == "__main__":
    main()
