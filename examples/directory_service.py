"""The directory service layer: what a deployment actually talks to --
bind, search (with controls), compare, and online updates.

Run:  python examples/directory_service.py
"""

from repro.model.instance import DirectoryInstance
from repro.model.schema import DirectorySchema
from repro.query.builder import Q
from repro.security import AccessControlList
from repro.server import DirectoryService, ResultCode


def build_instance() -> DirectoryInstance:
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("ou", "string")
    schema.add_attribute("uid", "string")
    schema.add_attribute("cn", "string")
    schema.add_attribute("userPassword", "string")
    schema.add_attribute("clearance", "int")
    schema.add_class("dcObject", {"dc"})
    schema.add_class("organizationalUnit", {"ou"})
    schema.add_class("account", {"uid", "cn", "userPassword", "clearance"})
    instance = DirectoryInstance(schema)
    instance.add("dc=example, dc=com", ["dcObject"], dc="example")
    instance.add("ou=staff, dc=example, dc=com", ["organizationalUnit"], ou="staff")
    instance.add("ou=contractors, dc=example, dc=com", ["organizationalUnit"],
                 ou="contractors")
    for uid, pw, clearance, unit in (
        ("admin", "s3cret", 9, "staff"),
        ("alice", "wonder", 5, "staff"),
        ("bob", "builder", 3, "staff"),
        ("eve", "external", 1, "contractors"),
    ):
        instance.add(
            "uid=%s, ou=%s, dc=example, dc=com" % (uid, unit),
            ["account"], uid=uid, cn="%s person" % uid,
            userPassword=pw, clearance=clearance,
        )
    return instance


def main() -> None:
    acl = AccessControlList(default_allow=False)
    acl.allow("*", "dc=example, dc=com", base_only=True)
    acl.allow("*", "ou=staff, dc=example, dc=com")
    acl.allow("uid=admin, ou=staff, dc=example, dc=com", "dc=example, dc=com")
    service = DirectoryService(build_instance(), acl=acl, page_size=4)

    print("== bind ==")
    print("  wrong password :", service.bind("uid=admin, ou=staff, dc=example, dc=com", "nope"))
    print("  correct        :", service.bind("uid=admin, ou=staff, dc=example, dc=com", "s3cret"))

    print("\n== admin sees everything; anonymous only staff ==")
    everyone = Q.sub("dc=example, dc=com", "objectClass=account")
    print("  admin    :", service.search(everyone).dns())
    service.bind_anonymous()
    print("  anonymous:", service.search(everyone).dns())

    print("\n== controls: size limit, paging, projection, strict typecheck ==")
    service.bind("uid=admin, ou=staff, dc=example, dc=com", "s3cret")
    limited = service.search(everyone, size_limit=2)
    print("  size_limit=2 -> %s, %d of %d" % (limited.code, len(limited), limited.total_size))
    for number, page in enumerate(service.search_paged(everyone, 3), start=1):
        print("  page %d: %s" % (number, [e.first("uid") for e in page]))
    projected = service.search(everyone, attributes=["cn"])
    print("  projected attrs:", projected.entries[0].attributes())
    bad = service.search("( ? sub ? typo=1)", strict=True)
    print("  strict typecheck of a typo ->", bad.code)

    print("\n== compare and online updates ==")
    dn = "uid=bob, ou=staff, dc=example, dc=com"
    print("  compare clearance=3:", service.compare(dn, "clearance", 3))
    print("  modify  clearance=7:", service.modify(dn, replace={"clearance": [7]}))
    print("  compare clearance=7:", service.compare(dn, "clearance", 7))
    print("  add duplicate      :", service.add(dn, ["account"], uid="bob"))
    print("  high clearance now :",
          service.search(Q.sub("dc=example, dc=com", "clearance>=7")).dns())


if __name__ == "__main__":
    main()
