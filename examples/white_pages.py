"""Corporate white pages -- the intro's motivating application, plus the
server-side features a deployment needs: paged results and subtree access
control.

Run:  python examples/white_pages.py
"""

from repro.apps.whitepages import WhitePages
from repro.engine.paging import PagedSearch, run_limited
from repro.security import AccessControlList, SecuredEngine

pages = WhitePages("dc=att, dc=com")
boss = pages.add_person(
    ["research"], "jag", "h jagadish", "jagadish",
    telephone="9733608776", title="department head",
)
divesh = pages.add_person(
    ["research", "db"], "divesh", "divesh srivastava", "srivastava",
    telephone="9733608777", manager=boss,
)
pages.add_person(["research", "db"], "dimitra", "dimitra vista", "vista",
                 manager=divesh)
pages.add_person(["research", "db"], "laks", "laks lakshmanan", "lakshmanan",
                 manager=divesh)
pages.add_person(["research", "networking"], "kk", "k ramakrishnan",
                 "ramakrishnan", manager=boss, telephone="9733608700")
pages.add_person(["sales"], "milo", "tova milo", "milo", telephone="5551234")
pages.add_person(["legal"], "counsel", "general counsel", "counsel")


def main() -> None:
    print("== people search (L0 wildcards) ==")
    for entry in pages.search_people("s*a*"):
        print("  %s  <%s>" % (entry.first("commonName"), entry.dn))

    print("\n== nearest unit (the paper's ac/dc idiom) ==")
    for fragment in ("vista", "jagadish", "milo"):
        person = pages.search_people(fragment)[0]
        unit = pages.unit_of(person)
        print("  %-22s -> ou=%s" % (person.first("commonName"), unit.first("ou")))

    print("\n== org structure through dn-valued manager refs (L3) ==")
    for entry in pages.direct_reports(boss):
        print("  reports to jagadish:", entry.first("commonName"))
    chain = pages.management_chain(pages.search_people("vista")[0])
    print("  vista's chain:", " -> ".join(e.first("uid") for e in chain))
    busy = pages.managers_with_reports_over(1)
    print("  managers with >1 report:", [e.first("uid") for e in busy])

    print("\n== units with more than 2 direct members (L2 counting) ==")
    for unit in pages.units_with_headcount_over(2):
        print("  ou=%s" % unit.first("ou"))

    print("\n== phone book for research ==")
    for name, phone in pages.phone_book(["research"]):
        print("  %-22s %s" % (name, phone))

    print("\n== paged retrieval (LDAP paged-results style) ==")
    cursor = PagedSearch(pages.engine, "( ? sub ? objectClass=inetOrgPerson)", 3)
    for number, page in enumerate(cursor, start=1):
        print("  page %d: %s" % (number, [e.first("uid") for e in page]))
    limited = run_limited(pages.engine, "( ? sub ? objectClass=*)", size_limit=4)
    print("  size-limited: %d of %d entries (truncated=%s)"
          % (len(limited), limited.total_size, limited.truncated))

    print("\n== subtree access control ==")
    acl = AccessControlList()
    acl.allow("*", "dc=att, dc=com")          # the directory is public...
    acl.deny("*", "ou=legal, dc=att, dc=com")  # ...except legal
    acl.allow("counsel", "ou=legal, dc=att, dc=com")  # who see themselves
    secured = SecuredEngine(pages.engine, acl)
    query = "( ? sub ? objectClass=inetOrgPerson)"
    print("  anonymous sees :", [e.first("uid") for e in secured.run(query)])
    print("  counsel sees   :", [e.first("uid") for e in secured.run(query, subject="counsel")])


if __name__ == "__main__":
    main()
