"""TOPS dial-by-name (Example 2.2 / Figure 11): resolve calls against a
subscriber's prioritised query handling profiles.

Run:  python examples/tops_call_routing.py
"""

from repro.apps import tops

directory = tops.build_paper_fragment()
# A second subscriber with caller-based access control, to show QHP privacy.
directory.add_subscriber("divesh", "divesh srivastava", "srivastava")
directory.add_qhp("divesh", "colleagues", priority=1, allowed_callers=("jag",))
directory.add_call_appearance("divesh", "colleagues", "9733608776", priority=1)
directory.add_qhp("divesh", "anyone", priority=2)
directory.add_call_appearance(
    "divesh", "anyone", "9733608777", priority=1, description="voice mailbox"
)

engine = directory.engine(page_size=8)


def show(request: tops.CallRequest) -> None:
    appearances = tops.resolve_call(directory, request, engine)
    print(request)
    if not appearances:
        print("  -> unreachable")
    for entry in appearances:
        print(
            "  -> %s (priority %s%s)"
            % (
                entry.first("CANumber"),
                entry.first("priority"),
                ", " + entry.first("description") if entry.first("description") else "",
            )
        )
    print()


def main() -> None:
    print("=== call resolution ===\n")
    show(tops.CallRequest("jag", time_of_day=1000, day_of_week=2))   # office hours
    show(tops.CallRequest("jag", time_of_day=2300, day_of_week=2))   # late night
    show(tops.CallRequest("jag", time_of_day=1000, day_of_week=7))   # sunday
    show(tops.CallRequest("divesh", 1000, 2, caller_uid="jag"))      # allowed caller
    show(tops.CallRequest("divesh", 1000, 2, caller_uid="stranger"))  # falls through

    print("=== Example 6.2: subscribers with more than 1 QHP ===\n")
    result = engine.run(
        "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)"
        "   (dc=att, dc=com ? sub ? objectClass=QHP)"
        "   count($2) > 1)"
    )
    for dn in result.dns():
        print("  ->", dn)
    print("  (%d page I/Os)" % result.io.total)


if __name__ == "__main__":
    main()
