"""Quickstart: build a small directory, query it at every language level.

Run:  python examples/quickstart.py
"""

from repro import DirectoryInstance, DirectorySchema
from repro.engine import QueryEngine

# ---------------------------------------------------------------------------
# 1. Schema: attributes are typed once, classes pick allowed attribute sets.
# ---------------------------------------------------------------------------
schema = DirectorySchema()
schema.add_attribute("dc", "string")
schema.add_attribute("ou", "string")
schema.add_attribute("commonName", "string")
schema.add_attribute("surName", "string")
schema.add_attribute("telephoneNumber", "string")
schema.add_attribute("grade", "int")
schema.add_attribute("manager", "distinguishedName")
schema.add_class("dcObject", {"dc"})
schema.add_class("organizationalUnit", {"ou"})
schema.add_class("person", {"commonName", "surName", "telephoneNumber", "grade", "manager"})

# ---------------------------------------------------------------------------
# 2. Instance: a forest of entries named by hierarchical distinguished names.
# ---------------------------------------------------------------------------
inst = DirectoryInstance(schema)
inst.add("dc=com", ["dcObject"], dc="com")
inst.add("dc=att, dc=com", ["dcObject"], dc="att")
inst.add("dc=research, dc=att, dc=com", ["dcObject"], dc="research")
inst.add("ou=labs, dc=research, dc=att, dc=com", ["organizationalUnit"], ou="labs")
inst.add("ou=sales, dc=att, dc=com", ["organizationalUnit"], ou="sales")

people = [
    ("jagadish", "ou=labs, dc=research, dc=att, dc=com", 7, None),
    ("srivastava", "ou=labs, dc=research, dc=att, dc=com", 6, "jagadish"),
    ("vista", "ou=labs, dc=research, dc=att, dc=com", 5, "jagadish"),
    ("milo", "ou=sales, dc=att, dc=com", 6, None),
    ("lakshmanan", "ou=sales, dc=att, dc=com", 4, "milo"),
]
dn_of = {}
for name, parent, grade, manager in people:
    dn = "surName=%s, %s" % (name, parent)
    attrs = {"surName": [name], "commonName": ["dr %s" % name], "grade": [grade]}
    if manager:
        attrs["manager"] = [dn_of[manager]]
    entry = inst.add(dn, ["person"], attrs)
    dn_of[name] = entry.dn

# ---------------------------------------------------------------------------
# 3. Engine: lay the instance out on the simulated block device and query.
# ---------------------------------------------------------------------------
# A deliberately tiny buffer pool (2 pages) so real page traffic is visible
# even on this toy directory; the algorithms run in constant memory.
engine = QueryEngine.from_instance(inst, page_size=4, buffer_pages=2)

QUERIES = [
    # L0: set difference across different bases -- Example 4.1's shape.
    ("L0  people in AT&T but not in Research",
     "(- (dc=att, dc=com ? sub ? surName=*)"
     "   (dc=research, dc=att, dc=com ? sub ? surName=*))"),
    # L1: hierarchical selection -- org units that directly contain a
    # person with grade >= 6.
    ("L1  units with a senior member",
     "(c (dc=com ? sub ? objectClass=organizationalUnit)"
     "   (dc=com ? sub ? grade>=6))"),
    # L2: structural aggregate selection -- units with more than 2 people.
    ("L2  units with more than 2 people",
     "(c (dc=com ? sub ? objectClass=organizationalUnit)"
     "   (dc=com ? sub ? objectClass=person)"
     "   count($2) > 2)"),
    # L2: simple aggregate selection -- the highest-grade people.
    ("L2  top-grade people",
     "(g (dc=com ? sub ? objectClass=person) max(grade)=max(max(grade)))"),
    # L3: embedded references -- people whose manager is in Research.
    ("L3  people managed from Research",
     "(vd (dc=com ? sub ? objectClass=person)"
     "    (dc=research, dc=att, dc=com ? sub ? objectClass=person)"
     "    manager)"),
]


def main() -> None:
    for title, text in QUERIES:
        result = engine.run(text)
        print(title)
        print("  query : %s" % " ".join(text.split()))
        for dn in result.dns():
            print("  ->", dn)
        print(
            "  cost  : %d physical page I/Os (%d logical) in %.2f ms"
            % (result.io.total, result.io.logical_reads, result.elapsed * 1e3)
        )
        print()


if __name__ == "__main__":
    main()
