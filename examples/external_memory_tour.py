"""A tour of the external-memory machinery: watch the I/O model at work.

Shows what the paper's theorems mean operationally -- the pager's
counters, the linear scaling of the stack algorithms, the blocking factor,
the optimizer's EXPLAIN -- on one synthetic directory.

Run:  python examples/external_memory_tour.py
"""

from repro.engine import QueryEngine
from repro.engine.naive import naive_hierarchical_select
from repro.engine.optimizer import PlannedEngine, explain
from repro.query.parser import parse_query
from repro.storage.store import DirectoryStore
from repro.workload import balanced_instance

QUERY = "(a ( ? sub ? kind=alpha) ( ? sub ? kind=beta))"


def main() -> None:
    print("== 1. linear I/O: the ancestors operator across a size sweep ==")
    print("   %8s %12s %14s" % ("entries", "page I/Os", "I/Os per entry"))
    for n in (1_000, 2_000, 4_000, 8_000):
        engine = QueryEngine.from_instance(
            balanced_instance(n, seed=3), page_size=16, buffer_pages=6
        )
        engine.pager.flush()
        result = engine.run(QUERY)
        logical = result.io.logical_reads + result.io.logical_writes
        print("   %8d %12d %14.3f" % (n, logical, logical / n))

    print("\n== 2. the same join, the naive way (quadratic) ==")
    for n in (250, 500, 1_000):
        engine = QueryEngine.from_instance(
            balanced_instance(n, seed=3), page_size=16, buffer_pages=6
        )
        first = engine.evaluate_to_run(parse_query("( ? sub ? kind=alpha)"))
        second = engine.evaluate_to_run(parse_query("( ? sub ? kind=beta)"))
        engine.pager.flush()
        before = engine.pager.stats.snapshot()
        naive_hierarchical_select(engine.pager, "a", first, second)
        delta = engine.pager.stats.since(before)
        print("   n=%5d  naive I/Os=%7d" % (n, delta.logical_reads + delta.logical_writes))

    print("\n== 3. the blocking factor B: bigger pages, fewer transfers ==")
    for page_size in (4, 16, 64):
        engine = QueryEngine.from_instance(
            balanced_instance(4_000, seed=3), page_size=page_size, buffer_pages=6
        )
        engine.pager.flush()
        result = engine.run(QUERY)
        logical = result.io.logical_reads + result.io.logical_writes
        print("   B=%2d  page I/Os=%6d" % (page_size, logical))

    print("\n== 4. constant memory: a 2-page buffer pool answers everything ==")
    tiny = QueryEngine.from_instance(
        balanced_instance(4_000, seed=3), page_size=16, buffer_pages=2
    )
    roomy = QueryEngine.from_instance(
        balanced_instance(4_000, seed=3), page_size=16, buffer_pages=64
    )
    assert tiny.run(QUERY).dns() == roomy.run(QUERY).dns()
    print("   identical answers with 2 and 64 resident pages")

    print("\n== 5. EXPLAIN: estimates, access paths, rewrites ==")
    instance = balanced_instance(2_000, seed=3)
    store = DirectoryStore.from_instance(instance, page_size=16, buffer_pages=8)
    store.build_indices(int_attributes=("weight",), string_attributes=("name",))
    plan = explain(
        store,
        parse_query(
            "(& ( ? sub ? name=e42)"
            "   (ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta)"
            "       ( ? sub ? objectClass=*)))"
        ),
        analyze=True,
    )
    print(plan.render(indent=1))


if __name__ == "__main__":
    main()
