"""The bounded result store: budget, cost-aware eviction, invalidation."""

import pytest

from repro.cache import Footprint, QueryCache
from repro.model.dn import DN
from repro.model.entry import Entry


def entry(dn_text: str, **values) -> Entry:
    return Entry(DN.parse(dn_text), ["node"], {k: [v] for k, v in values.items()})


def result(n: int, prefix: str = "x") -> list:
    return [entry("name=%s%d, dc=com" % (prefix, i)) for i in range(n)]


COM_SUB = Footprint.subtree("dc=com")
ORG_SUB = Footprint.subtree("dc=org")


class TestLookups:
    def test_get_miss_then_hit(self):
        cache = QueryCache(byte_budget=100_000)
        assert cache.get("k") is None
        cache.put("k", "(q)", result(3), COM_SUB, cost_io=10)
        hit = cache.get("k")
        assert hit is not None and len(hit.entries) == 3
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.saved_logical_io == 10

    def test_peek_does_not_count(self):
        cache = QueryCache(byte_budget=100_000)
        cache.put("k", "(q)", result(1), COM_SUB, cost_io=5)
        assert cache.peek("k") is not None
        assert cache.peek("missing") is None
        assert cache.stats.lookups == 0

    def test_replacement_updates_bytes(self):
        cache = QueryCache(byte_budget=100_000)
        cache.put("k", "(q)", result(10), COM_SUB, cost_io=5)
        big = cache.resident_bytes
        cache.put("k", "(q)", result(1), COM_SUB, cost_io=5)
        assert cache.resident_bytes < big
        assert len(cache) == 1


class TestBudgetAndEviction:
    def test_oversized_result_rejected(self):
        cache = QueryCache(byte_budget=200)
        assert cache.put("k", "(q)", result(50), COM_SUB, cost_io=1000) is None
        assert cache.stats.rejected == 1
        assert "k" not in cache

    def test_eviction_respects_budget(self):
        cache = QueryCache(byte_budget=400)
        for i in range(10):
            cache.put("k%d" % i, "(q%d)" % i, result(1), COM_SUB, cost_io=10)
        assert cache.resident_bytes <= 400
        assert cache.stats.evictions > 0

    def test_expensive_results_outlive_cheap_ones(self):
        cache = QueryCache(byte_budget=1200)
        cache.put("pricey", "(agg)", result(1, "a"), COM_SUB, cost_io=10_000)
        cache.put("cheap1", "(look1)", result(1, "b"), COM_SUB, cost_io=2)
        cache.put("cheap2", "(look2)", result(1, "c"), COM_SUB, cost_io=2)
        # keep inserting cheap entries until something must be evicted
        for i in range(12):
            cache.put("fill%d" % i, "(f%d)" % i, result(1, "d%d" % i), COM_SUB, cost_io=2)
        assert "pricey" in cache
        assert cache.stats.evictions > 0

    def test_recency_still_matters_among_equals(self):
        cache = QueryCache(byte_budget=1000)
        keys = ["k%d" % i for i in range(4)]
        for key in keys:
            cache.put(key, "(%s)" % key, result(1, key), COM_SUB, cost_io=10)
        # touch all but k0, then force evictions: k0 is the stalest
        for key in keys[1:]:
            cache.get(key)
        while "k0" in cache:
            cache.put("new%d" % cache.stats.insertions, "(n)", result(1, "n"), COM_SUB, cost_io=10)
        assert all(key in cache for key in keys[1:])


class TestInvalidation:
    def test_invalidate_point(self):
        cache = QueryCache(byte_budget=100_000)
        cache.put("com", "(qc)", result(1, "a"), COM_SUB, cost_io=5)
        cache.put("org", "(qo)", result(1, "b"), ORG_SUB, cost_io=5)
        evicted = cache.invalidate(DN.parse("name=x, dc=com"))
        assert evicted == 1
        assert "com" not in cache and "org" in cache
        assert cache.stats.invalidations == 1

    def test_invalidate_subtree(self):
        cache = QueryCache(byte_budget=100_000)
        cache.put("point", "(qp)", result(1, "a"), Footprint.point("dc=att, dc=com"), cost_io=5)
        cache.put("org", "(qo)", result(1, "b"), ORG_SUB, cost_io=5)
        # recursive delete of dc=com region hits the point inside it
        assert cache.invalidate(DN.parse("dc=com"), subtree=True) == 1
        assert "point" not in cache and "org" in cache

    def test_invalidate_tag(self):
        cache = QueryCache(byte_budget=100_000)
        cache.put("a|q1", "(q1)", result(1, "a"), COM_SUB, cost_io=5, tag="a")
        cache.put("b|q1", "(q1)", result(1, "b"), COM_SUB, cost_io=5, tag="b")
        assert cache.invalidate_tag("a") == 1
        assert "a|q1" not in cache and "b|q1" in cache

    def test_clear(self):
        cache = QueryCache(byte_budget=100_000)
        cache.put("k1", "(q)", result(1, "a"), COM_SUB, cost_io=5)
        cache.put("k2", "(q)", result(1, "b"), ORG_SUB, cost_io=5)
        assert cache.clear() == 2
        assert len(cache) == 0 and cache.resident_bytes == 0


class TestInvalidationEpoch:
    """The put-vs-invalidate fence: a result evaluated before a write can
    reach ``put`` after the write's invalidation ran (the stale result is
    in flight, not resident, so the invalidation cannot evict it).
    ``if_epoch`` closes the hole."""

    def test_stale_put_is_rejected(self):
        cache = QueryCache(byte_budget=100_000)
        epoch = cache.invalidation_epoch
        # A concurrent write invalidates while the evaluation is in
        # flight -- nothing is resident yet, so nothing is evicted ...
        assert cache.invalidate(DN.parse("name=x, dc=com")) == 0
        # ... and the pre-write result must not be admitted.
        assert cache.put("k", "(q)", result(2), COM_SUB, cost_io=5,
                         if_epoch=epoch) is None
        assert "k" not in cache
        assert cache.stats.rejected == 1

    def test_current_epoch_put_is_admitted(self):
        cache = QueryCache(byte_budget=100_000)
        cache.invalidate(DN.parse("name=x, dc=com"))
        epoch = cache.invalidation_epoch
        assert cache.put("k", "(q)", result(2), COM_SUB, cost_io=5,
                         if_epoch=epoch) is not None
        assert "k" in cache

    def test_every_write_driven_mutation_bumps(self):
        cache = QueryCache(byte_budget=100_000)
        before = cache.invalidation_epoch
        cache.invalidate(DN.parse("name=x, dc=com"))
        cache.invalidate_tag("t")
        cache.drop("missing")
        cache.clear()
        assert cache.invalidation_epoch == before + 4

    def test_put_without_epoch_is_unfenced(self):
        cache = QueryCache(byte_budget=100_000)
        cache.invalidate(DN.parse("name=x, dc=com"))
        assert cache.put("k", "(q)", result(1), COM_SUB, cost_io=5) is not None


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryCache(byte_budget=0)
