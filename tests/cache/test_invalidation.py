"""Update-log invalidation: precise, and survives compaction."""

from repro.cache import QueryCache, UpdateLogInvalidator, fingerprint, query_footprint
from repro.model.instance import DirectoryInstance
from repro.query.parser import parse_query
from repro.storage.maintenance import UpdatableDirectory
from repro.workload import synthetic_schema


def make_directory() -> UpdatableDirectory:
    instance = DirectoryInstance(synthetic_schema())
    instance.add("name=r1", ["container"], name="r1", kind="alpha")
    instance.add("name=r2", ["container"], name="r2", kind="beta")
    for root in ("r1", "r2"):
        for i in range(4):
            instance.add(
                "name=%s-c%d, name=%s" % (root, i, root),
                ["node"],
                name="%s-c%d" % (root, i),
                kind="alpha",
                level=i,
            )
    return UpdatableDirectory.from_instance(instance, page_size=4, buffer_pages=4)


def seed_cache(cache: QueryCache, directory: UpdatableDirectory, text: str) -> str:
    query = parse_query(text)
    key = fingerprint(query)
    engine = directory.engine()
    result = engine.run(query)
    cache.put(key, text, result.entries, query_footprint(query), cost_io=10)
    return key


class TestUpdateLogInvalidator:
    def test_add_evicts_only_intersecting(self):
        directory = make_directory()
        cache = QueryCache()
        UpdateLogInvalidator(directory, cache)
        r1 = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        r2 = seed_cache(cache, directory, "(name=r2 ? sub ? kind=alpha)")
        directory.add("name=new, name=r1", ["node"], name="new", kind="alpha")
        assert r1 not in cache
        assert r2 in cache

    def test_modify_evicts_point_cover(self):
        directory = make_directory()
        cache = QueryCache()
        UpdateLogInvalidator(directory, cache)
        r1 = seed_cache(cache, directory, "(name=r1 ? sub ? level<3)")
        base = seed_cache(cache, directory, "(name=r2 ? base ? kind=*)")
        directory.modify("name=r1-c0, name=r1", replace={"level": [7]})
        assert r1 not in cache
        assert base in cache

    def test_recursive_delete_uses_subtree_region(self):
        directory = make_directory()
        cache = QueryCache()
        UpdateLogInvalidator(directory, cache)
        deep = seed_cache(
            cache, directory, "(name=r1-c0, name=r1 ? base ? kind=*)"
        )
        other = seed_cache(cache, directory, "(name=r2 ? sub ? kind=*)")
        directory.delete("name=r1", recursive=True)
        assert deep not in cache
        assert other in cache

    def test_survivors_remain_valid_across_compaction(self):
        directory = make_directory()
        cache = QueryCache()
        UpdateLogInvalidator(directory, cache)
        r2 = seed_cache(cache, directory, "(name=r2 ? sub ? kind=alpha)")
        expected = [e.dn for e in cache.peek(r2).entries]
        directory.add("name=new, name=r1", ["node"], name="new", kind="alpha")
        directory.compact()  # nothing flushed wholesale
        assert r2 in cache
        # the surviving entry still matches a fresh evaluation
        fresh = directory.engine().run("(name=r2 ? sub ? kind=alpha)")
        assert [e.dn for e in fresh.entries] == expected

    def test_detach_stops_eviction(self):
        directory = make_directory()
        cache = QueryCache()
        hook = UpdateLogInvalidator(directory, cache)
        r1 = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        hook.detach()
        directory.add("name=new, name=r1", ["node"], name="new", kind="alpha")
        assert r1 in cache  # stale by design once detached
        hook.detach()  # idempotent
