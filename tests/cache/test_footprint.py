"""Static read footprints: ranges, closures and the coverage tests."""

from repro.cache import Footprint, query_footprint
from repro.model.dn import DN, ROOT_DN
from repro.query.parser import parse_query


COM = DN.parse("dc=com")
ATT = DN.parse("dc=att, dc=com")
RESEARCH = DN.parse("dc=research, dc=att, dc=com")
ORG = DN.parse("dc=org")


class TestFootprintAlgebra:
    def test_point_covers_only_itself(self):
        fp = Footprint.point(ATT)
        assert fp.covers(ATT)
        assert not fp.covers(COM)
        assert not fp.covers(RESEARCH)

    def test_subtree_covers_descendants(self):
        fp = Footprint.subtree(ATT)
        assert fp.covers(ATT)
        assert fp.covers(RESEARCH)
        assert not fp.covers(COM)
        assert not fp.covers(ORG)

    def test_everything(self):
        fp = Footprint.everything()
        for dn in (ROOT_DN, COM, RESEARCH, ORG):
            assert fp.covers(dn)

    def test_union_and_prune(self):
        fp = Footprint.subtree(COM) | Footprint.point(RESEARCH)
        # the point under dc=com is subsumed by the subtree range
        assert len(fp) == 1
        assert fp.covers(RESEARCH)

    def test_nested_subtrees_prune(self):
        fp = Footprint.subtree(COM) | Footprint.subtree(ATT)
        assert len(fp) == 1

    def test_intersects_subtree(self):
        fp = Footprint.point(RESEARCH)
        # deleting the subtree at dc=att wipes the point inside it
        assert fp.intersects_subtree(ATT)
        assert not fp.intersects_subtree(ORG)
        # a subtree range intersects an updated region containing it ...
        assert Footprint.subtree(ATT).intersects_subtree(COM)
        # ... and one inside it
        assert Footprint.subtree(COM).intersects_subtree(ATT)

    def test_ancestor_closure_adds_chain_points(self):
        fp = Footprint.subtree(RESEARCH).ancestor_closure()
        assert fp.covers(ATT)
        assert fp.covers(COM)
        assert not fp.covers(ORG)

    def test_descendant_closure_widens_points(self):
        fp = Footprint.point(ATT).descendant_closure()
        assert fp.covers(RESEARCH)
        assert not fp.covers(COM)


class TestQueryFootprint:
    def test_atomic_base_scope_is_point(self):
        fp = query_footprint(parse_query("(dc=att, dc=com ? base ? a=*)"))
        assert fp.covers(ATT)
        assert not fp.covers(RESEARCH)

    def test_atomic_sub_scope_is_subtree(self):
        fp = query_footprint(parse_query("(dc=att, dc=com ? sub ? a=*)"))
        assert fp.covers(RESEARCH)
        assert not fp.covers(COM)

    def test_atomic_one_scope_conservative_subtree(self):
        fp = query_footprint(parse_query("(dc=com ? one ? a=*)"))
        assert fp.covers(ATT)
        assert fp.covers(RESEARCH)  # conservative over-approximation

    def test_boolean_union(self):
        fp = query_footprint(
            parse_query("(| (dc=att, dc=com ? sub ? a=*) (dc=org ? base ? a=*))")
        )
        assert fp.covers(RESEARCH)
        assert fp.covers(ORG)
        assert not fp.covers(COM)

    def test_ancestor_operator_widens_upward(self):
        # (a Q1 Q2): ancestors outside the operand subtrees can matter
        fp = query_footprint(
            parse_query(
                "(a (dc=research, dc=att, dc=com ? sub ? a=*)"
                "   (dc=research, dc=att, dc=com ? sub ? b=*))"
            )
        )
        assert fp.covers(ATT)
        assert fp.covers(COM)
        assert not fp.covers(ORG)

    def test_descendant_operator_widens_downward(self):
        fp = query_footprint(
            parse_query("(d (dc=com ? base ? a=*) (dc=com ? base ? b=*))")
        )
        assert fp.covers(RESEARCH)

    def test_aggregate_variant_takes_both_closures(self):
        fp = query_footprint(
            parse_query(
                "(p (dc=att, dc=com ? base ? a=*) (dc=att, dc=com ? base ? b=*)"
                " count($2) > 1)"
            )
        )
        assert fp.covers(COM)       # ancestor closure
        assert fp.covers(RESEARCH)  # descendant closure

    def test_simple_agg_keeps_operand_footprint(self):
        fp = query_footprint(
            parse_query("(g (dc=att, dc=com ? sub ? a=*) count($1.a) > 0)")
        )
        assert fp.covers(RESEARCH)
        assert not fp.covers(ORG)

    def test_embedded_ref_widens_to_everything(self):
        fp = query_footprint(
            parse_query(
                "(vd (dc=att, dc=com ? sub ? a=*) (dc=att, dc=com ? sub ? b=*) ref)"
            )
        )
        assert fp.covers(ORG)  # refs may point anywhere
