"""Canonical fingerprints: ACD-equivalent queries share one cache slot."""

import pytest

from repro.cache import atomic_fingerprint, canonical_text, fingerprint
from repro.query.parser import parse_query


class TestFingerprint:
    def test_identical_queries_agree(self):
        q = "( ? sub ? kind=alpha)"
        assert fingerprint(q) == fingerprint(parse_query(q))

    def test_commuted_and(self):
        a = "(& ( ? sub ? kind=alpha) ( ? sub ? level<5))"
        b = "(& ( ? sub ? level<5) ( ? sub ? kind=alpha))"
        assert fingerprint(a) == fingerprint(b)

    def test_reassociated_or(self):
        a = "(| (| ( ? sub ? kind=a) ( ? sub ? kind=b)) ( ? sub ? kind=c))"
        b = "(| ( ? sub ? kind=a) (| ( ? sub ? kind=b) ( ? sub ? kind=c)))"
        assert fingerprint(a) == fingerprint(b)

    def test_duplicate_operand_dropped(self):
        a = "(& ( ? sub ? kind=alpha) ( ? sub ? kind=alpha))"
        b = "( ? sub ? kind=alpha)"
        assert fingerprint(a) == fingerprint(b)

    def test_difference_not_commuted(self):
        a = "(- ( ? sub ? kind=alpha) ( ? sub ? kind=beta))"
        b = "(- ( ? sub ? kind=beta) ( ? sub ? kind=alpha))"
        assert fingerprint(a) != fingerprint(b)

    def test_distinct_queries_differ(self):
        assert fingerprint("( ? sub ? kind=alpha)") != fingerprint(
            "( ? sub ? kind=beta)"
        )
        assert fingerprint("( ? sub ? kind=alpha)") != fingerprint(
            "( ? one ? kind=alpha)"
        )

    def test_canonical_text_is_rendered_normal_form(self):
        text = canonical_text("(& ( ? sub ? b=*) ( ? sub ? a=*))")
        assert text == canonical_text("(& ( ? sub ? a=*) ( ? sub ? b=*))")

    def test_atomic_fingerprint_rejects_composites(self):
        with pytest.raises(TypeError):
            atomic_fingerprint(parse_query("(& ( ? sub ? a=*) ( ? sub ? b=*))"))
        atomic = parse_query("(dc=com ? base ? a=*)")
        assert atomic_fingerprint(atomic) == fingerprint(atomic)
