"""Cache correctness at the service level.

- differential: a cached service must agree with the definitional
  semantics (``repro.query.semantics``) under interleaved searches,
  updates and compactions -- hits included;
- security: a hit produced under one bound subject must be re-filtered
  for another (the cache stores pre-ACL results).
"""

import random

from repro.model.instance import DirectoryInstance
from repro.model.schema import DirectorySchema
from repro.query.semantics import evaluate
from repro.security import AccessControlList
from repro.server import DirectoryService, ResultCode
from repro.workload import RandomQueries, random_instance


def rebuild(schema, entries_by_dn) -> DirectoryInstance:
    """A fresh logical instance from the mirror dict (parents first)."""
    instance = DirectoryInstance(schema)
    for dn in sorted(entries_by_dn, key=lambda d: d.key()):
        instance.add_entry(entries_by_dn[dn])
    return instance


class TestDifferential:
    def test_interleaved_search_update_compaction(self):
        instance = random_instance(5, size=120)
        schema = instance.schema
        service = DirectoryService(instance, page_size=8)
        mirror = {entry.dn: entry for entry in instance}
        pool = [RandomQueries(instance, seed=9).any_level() for _ in range(12)]
        rng = random.Random(17)
        fresh = 0

        for step in range(100):
            query = rng.choice(pool)
            got = service.search(query)
            want = evaluate(query, rebuild(schema, mirror))
            assert got.dns() == [str(e.dn) for e in want], str(query)

            if step % 4 != 3:
                continue
            action = rng.choice(["add", "modify", "delete", "compact"])
            if action == "add":
                parent = rng.choice(sorted(mirror, key=lambda d: d.key()))
                name = "zz%d" % fresh
                fresh += 1
                dn = parent.child("name=" + name)
                code = service.add(
                    dn, ["node"], name=name, kind="delta",
                    level=rng.randint(0, 9), weight=rng.randint(0, 100),
                )
                assert code == ResultCode.SUCCESS
                mirror[dn] = service.directory.lookup(dn)
            elif action == "modify":
                candidates = [
                    dn for dn, e in mirror.items()
                    if e.classes & {"node", "item"}
                ]
                if not candidates:
                    continue
                dn = rng.choice(sorted(candidates, key=lambda d: d.key()))
                code = service.modify(dn, replace={"weight": [rng.randint(0, 100)]})
                assert code == ResultCode.SUCCESS
                mirror[dn] = service.directory.lookup(dn)
            elif action == "delete":
                leaves = [
                    dn for dn in mirror
                    if not any(dn.is_ancestor_of(other) for other in mirror)
                ]
                if not leaves:
                    continue
                dn = rng.choice(sorted(leaves, key=lambda d: d.key()))
                assert service.delete(dn) == ResultCode.SUCCESS
                del mirror[dn]
            else:
                service.directory.compact()

        stats = service.cache_stats
        assert stats.hits > 0, "workload never exercised a cache hit"
        assert stats.invalidations > 0, "workload never exercised invalidation"


def make_secured_service() -> DirectoryService:
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("uid", "string")
    schema.add_attribute("userPassword", "string")
    schema.add_class("dcObject", {"dc"})
    schema.add_class("account", {"uid", "userPassword"})
    instance = DirectoryInstance(schema)
    instance.add("dc=com", ["dcObject"], dc="com")
    for uid in ("alice", "bob"):
        instance.add(
            "uid=%s, dc=com" % uid, ["account"], uid=uid, userPassword="pw-" + uid
        )
    acl = AccessControlList(default_allow=False)
    acl.allow("uid=alice, dc=com", "dc=com")
    acl.allow("uid=bob, dc=com", "uid=bob, dc=com")
    return DirectoryService(instance, acl=acl, page_size=4)


class TestHitVisibility:
    QUERY = "( ? sub ? objectClass=account)"

    def test_hit_is_refiltered_per_subject(self):
        service = make_secured_service()
        service.bind("uid=alice, dc=com", "pw-alice")
        first = service.search(self.QUERY)
        assert not first.cached
        assert len(first) == 2

        service.bind("uid=bob, dc=com", "pw-bob")
        second = service.search(self.QUERY)
        assert second.cached, "same query should be a cache hit"
        assert second.dns() == ["uid=bob, dc=com"], (
            "alice's bind must not leak into bob's results"
        )
        assert second.total_size == 1  # post-ACL accounting

        service.bind_anonymous()
        third = service.search(self.QUERY)
        assert third.cached
        assert len(third) == 0

    def test_subject_swap_back_still_complete(self):
        # the cache keeps the pre-ACL list, so a later privileged subject
        # sees everything even though a restricted one hit in between
        service = make_secured_service()
        service.bind("uid=bob, dc=com", "pw-bob")
        assert service.search(self.QUERY).dns() == ["uid=bob, dc=com"]
        service.bind("uid=alice, dc=com", "pw-alice")
        again = service.search(self.QUERY)
        assert again.cached
        assert len(again) == 2
