"""Incremental cache maintenance: patch in place instead of evicting.

Every patched result must stay *exact*: after any sequence of updates,
the cached entry list is bit-identical to a fresh evaluation of the same
query against the post-update directory.
"""

from repro.cache import (
    IncrementalCacheMaintainer,
    QueryCache,
    fingerprint,
    query_footprint,
)
from repro.model.instance import DirectoryInstance
from repro.query.parser import parse_query
from repro.storage.maintenance import UpdatableDirectory
from repro.workload import synthetic_schema


def make_directory() -> UpdatableDirectory:
    instance = DirectoryInstance(synthetic_schema())
    instance.add("name=r1", ["container"], name="r1", kind="alpha")
    instance.add("name=r2", ["container"], name="r2", kind="beta")
    for root in ("r1", "r2"):
        for i in range(4):
            instance.add(
                "name=%s-c%d, name=%s" % (root, i, root),
                ["node"],
                name="%s-c%d" % (root, i),
                kind="alpha",
                level=i,
            )
    return UpdatableDirectory.from_instance(instance, page_size=4, buffer_pages=4)


def seed_cache(cache, directory, text, cost_io=10):
    query = parse_query(text)
    key = fingerprint(query)
    result = directory.engine().run(query)
    cache.put(
        key, text, result.entries, query_footprint(query), cost_io, query=query
    )
    return key, query


def assert_exact(cache, directory, key, text):
    """The resident result matches a fresh evaluation, byte for byte."""
    resident = cache.peek(key)
    assert resident is not None
    fresh = directory.engine().run(text)
    assert [str(e.dn) for e in resident.entries] == [
        str(e.dn) for e in fresh.entries
    ]
    for cached, live in zip(resident.entries, fresh.entries):
        for name in live.attributes():
            assert cached.values(name) == live.values(name)


class TestPatch:
    def test_add_patches_matching_row_in(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        before = len(cache.peek(key).entries)
        directory.add(
            "name=new, name=r1", ["node"], name="new", kind="alpha", level=9
        )
        assert key in cache
        assert len(cache.peek(key).entries) == before + 1
        assert_exact(cache, directory, key, "(name=r1 ? sub ? kind=alpha)")
        assert cache.stats.patched >= 1
        assert cache.stats.invalidations == 0

    def test_rows_insert_in_result_order(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        # Several adds landing at different positions in reverse-dn order.
        for name in ("aa", "mm", "zz"):
            directory.add(
                "name=%s, name=r1" % name, ["node"], name=name, kind="alpha"
            )
        assert_exact(cache, directory, key, "(name=r1 ? sub ? kind=alpha)")

    def test_delete_patches_row_out(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        before = len(cache.peek(key).entries)
        directory.delete("name=r1-c2, name=r1")
        assert key in cache
        assert len(cache.peek(key).entries) == before - 1
        assert_exact(cache, directory, key, "(name=r1 ? sub ? kind=alpha)")

    def test_subtree_delete_patches_all_rows_beneath(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "( ? sub ? kind=alpha)")
        directory.delete("name=r1", recursive=True)
        assert key in cache
        assert_exact(cache, directory, key, "( ? sub ? kind=alpha)")
        assert all(
            not str(e.dn).endswith("name=r1") for e in cache.peek(key).entries
        )

    def test_modify_replaces_row_payload(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        directory.modify("name=r1-c1, name=r1", replace={"level": [42]})
        assert key in cache
        resident = cache.peek(key)
        patched = next(
            e for e in resident.entries if str(e.dn).startswith("name=r1-c1")
        )
        assert patched.values("level") == (42,)
        assert_exact(cache, directory, key, "(name=r1 ? sub ? kind=alpha)")

    def test_modify_that_breaks_predicate_removes_row(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? level<3)")
        directory.modify("name=r1-c0, name=r1", replace={"level": [7]})
        assert key in cache
        assert all(
            not str(e.dn).startswith("name=r1-c0")
            for e in cache.peek(key).entries
        )
        assert_exact(cache, directory, key, "(name=r1 ? sub ? level<3)")


class TestKeep:
    def test_rejected_add_keeps_resident_untouched(self):
        directory = make_directory()
        cache = QueryCache()
        maintainer = IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        before = [str(e.dn) for e in cache.peek(key).entries]
        # Touches the footprint (under name=r1) but fails the predicate.
        directory.add("name=off, name=r1", ["node"], name="off", kind="beta")
        assert key in cache
        assert [str(e.dn) for e in cache.peek(key).entries] == before
        assert cache.stats.patched == 0
        assert cache.stats.invalidations == 0
        assert_exact(cache, directory, key, "(name=r1 ? sub ? kind=alpha)")

    def test_delete_outside_result_is_a_keep(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        directory.add("name=off, name=r1", ["node"], name="off", kind="beta")
        before = [str(e.dn) for e in cache.peek(key).entries]
        directory.delete("name=off, name=r1")
        assert [str(e.dn) for e in cache.peek(key).entries] == before
        assert cache.stats.invalidations == 0


class TestEvictFallback:
    def test_non_local_query_still_evicts(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        # HierarchySelect cannot be patched row-locally: membership of one
        # entry depends on other entries.
        text = "(c (name=r1 ? sub ? kind=alpha) ( ? sub ? level>=1))"
        key, _ = seed_cache(cache, directory, text)
        directory.add("name=h, name=r1", ["node"], name="h", kind="alpha")
        assert key not in cache
        assert cache.stats.invalidations == 1

    def test_result_without_query_ast_still_evicts(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        query = parse_query("(name=r1 ? sub ? kind=alpha)")
        key = fingerprint(query)
        result = directory.engine().run(query)
        # Legacy put without the AST: no patch eligibility.
        cache.put(key, "legacy", result.entries, query_footprint(query), 10)
        directory.add("name=l, name=r1", ["node"], name="l", kind="alpha")
        assert key not in cache

    def test_untouched_results_are_left_alone(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r2 ? sub ? kind=alpha)")
        before = [str(e.dn) for e in cache.peek(key).entries]
        directory.add("name=n, name=r1", ["node"], name="n", kind="alpha")
        assert [str(e.dn) for e in cache.peek(key).entries] == before

    def test_patch_outgrowing_budget_falls_back_to_invalidation(self):
        directory = make_directory()
        cache = QueryCache(byte_budget=2048)
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        grew = False
        for i in range(64):
            directory.add(
                "name=pad%02d, name=r1" % i,
                ["node"],
                name="pad%02d" % i,
                kind="alpha",
                tag="x" * 40,
            )
            if key not in cache:
                grew = True
                break
        assert grew, "result never outgrew the byte budget"
        assert cache.stats.invalidations >= 1


class TestComposite:
    def test_boolean_queries_patch_exactly(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        text = "(& (name=r1 ? sub ? kind=alpha) (name=r1 ? sub ? level<3))"
        key, _ = seed_cache(cache, directory, text)
        directory.add(
            "name=b1, name=r1", ["node"], name="b1", kind="alpha", level=1
        )
        directory.add(
            "name=b2, name=r1", ["node"], name="b2", kind="alpha", level=5
        )
        assert key in cache
        assert_exact(cache, directory, key, text)
        dns = [str(e.dn) for e in cache.peek(key).entries]
        assert any(d.startswith("name=b1") for d in dns)
        assert not any(d.startswith("name=b2") for d in dns)

    def test_detach_stops_maintenance(self):
        directory = make_directory()
        cache = QueryCache()
        maintainer = IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        maintainer.detach()
        before = len(cache.peek(key).entries)
        directory.add("name=d, name=r1", ["node"], name="d", kind="alpha")
        assert len(cache.peek(key).entries) == before  # now stale, untouched

    def test_patched_results_survive_compaction(self):
        directory = make_directory()
        cache = QueryCache()
        IncrementalCacheMaintainer(directory, cache)
        key, _ = seed_cache(cache, directory, "(name=r1 ? sub ? kind=alpha)")
        directory.add("name=s, name=r1", ["node"], name="s", kind="alpha")
        directory.compact()
        assert key in cache
        assert_exact(cache, directory, key, "(name=r1 ? sub ? kind=alpha)")
