"""The directory service: bind, search, compare, mutations, controls."""

import pytest

from repro.model.instance import DirectoryInstance
from repro.model.schema import DirectorySchema
from repro.query.builder import Q
from repro.security import AccessControlList
from repro.server import DirectoryService, ResultCode


def make_schema() -> DirectorySchema:
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("uid", "string")
    schema.add_attribute("cn", "string")
    schema.add_attribute("userPassword", "string")
    schema.add_attribute("grade", "int")
    schema.add_class("dcObject", {"dc"})
    schema.add_class("account", {"uid", "cn", "userPassword", "grade"})
    return schema


@pytest.fixture
def service():
    instance = DirectoryInstance(make_schema())
    instance.add("dc=com", ["dcObject"], dc="com")
    for uid, password, grade in (
        ("alice", "wonder", 7),
        ("bob", "builder", 5),
        ("carol", "singer", 5),
    ):
        instance.add(
            "uid=%s, dc=com" % uid,
            ["account"],
            uid=uid,
            cn="%s person" % uid,
            userPassword=password,
            grade=grade,
        )
    acl = AccessControlList(default_allow=False)
    acl.allow("*", "dc=com", base_only=True)
    acl.allow("uid=alice, dc=com", "dc=com")       # alice reads everything
    acl.allow("uid=bob, dc=com", "uid=bob, dc=com")  # bob reads only himself
    return DirectoryService(instance, acl=acl, page_size=4)


class TestBind:
    def test_success(self, service):
        assert service.bind("uid=alice, dc=com", "wonder") == ResultCode.SUCCESS
        assert service.bound_subject == "uid=alice, dc=com"

    def test_wrong_password(self, service):
        assert service.bind("uid=alice, dc=com", "nope") == ResultCode.INVALID_CREDENTIALS
        assert service.bound_subject is None

    def test_unknown_subject(self, service):
        assert service.bind("uid=ghost, dc=com", "x") == ResultCode.NO_SUCH_OBJECT

    def test_anonymous(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        assert service.bind_anonymous() == ResultCode.SUCCESS
        assert service.bound_subject is None


class TestSearch:
    QUERY = "( ? sub ? objectClass=account)"

    def test_acl_enforced_per_subject(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        assert len(service.search(self.QUERY)) == 3
        service.bind("uid=bob, dc=com", "builder")
        assert service.search(self.QUERY).dns() == ["uid=bob, dc=com"]
        service.bind_anonymous()
        assert len(service.search(self.QUERY)) == 0

    def test_builder_queries_accepted(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        result = service.search(Q.sub("dc=com", "grade>=6"))
        assert result.dns() == ["uid=alice, dc=com"]

    def test_size_limit(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        result = service.search(self.QUERY, size_limit=2)
        assert result.code == ResultCode.SIZE_LIMIT_EXCEEDED
        assert len(result) == 2
        assert result.total_size == 3

    def test_paged(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        pages = list(service.search_paged(self.QUERY, page_entries=2))
        assert [len(p) for p in pages] == [2, 1]

    def test_projection(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        result = service.search(self.QUERY, attributes=["cn"])
        entry = result.entries[0]
        assert entry.has("cn")
        assert entry.has("uid")  # rdn attribute always kept
        assert not entry.has("userPassword")

    def test_strict_typecheck(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        bad = service.search("( ? sub ? bogus=1)", strict=True)
        assert bad.code == ResultCode.PROTOCOL_ERROR
        assert len(bad) == 0
        good = service.search(self.QUERY, strict=True)
        assert good.code == ResultCode.SUCCESS


class TestSearchPaged:
    QUERY = "( ? sub ? objectClass=account)"

    def test_accepts_string_queries(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        from_str = list(service.search_paged(self.QUERY, page_entries=2))
        from_ast = list(
            service.search_paged(Q.sub("", "objectClass=account"), page_entries=2)
        )
        flatten = lambda pages: [str(e.dn) for page in pages for e in page]
        assert flatten(from_str) == flatten(from_ast)

    def test_pages_are_acl_filtered(self, service):
        service.bind("uid=bob, dc=com", "builder")
        pages = list(service.search_paged(self.QUERY, page_entries=2))
        assert [len(p) for p in pages] == [1]
        assert str(pages[0][0].dn) == "uid=bob, dc=com"

    def test_bad_page_size_raises_eagerly(self, service):
        with pytest.raises(ValueError):
            service.search_paged(self.QUERY, page_entries=0)


class TestSizeAccounting:
    """total_size counts *visible* entries; the limit truncates them."""

    QUERY = "( ? sub ? objectClass=account)"

    def test_total_size_is_post_acl(self, service):
        service.bind("uid=bob, dc=com", "builder")
        result = service.search(self.QUERY)
        assert result.code == ResultCode.SUCCESS
        assert result.total_size == 1 == len(result)

    def test_limit_applies_to_visible_not_raw(self, service):
        # bob sees one entry; a limit of 1 is therefore NOT exceeded even
        # though three entries matched pre-ACL
        service.bind("uid=bob, dc=com", "builder")
        result = service.search(self.QUERY, size_limit=1)
        assert result.code == ResultCode.SUCCESS
        assert result.total_size == 1

    def test_bad_size_limit_rejected(self, service):
        with pytest.raises(ValueError):
            service.search(self.QUERY, size_limit=0)


class TestCompare:
    def test_true_false(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        assert service.compare("uid=bob, dc=com", "grade", 5) == ResultCode.COMPARE_TRUE
        assert service.compare("uid=bob, dc=com", "grade", 9) == ResultCode.COMPARE_FALSE

    def test_no_such_object(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        assert service.compare("uid=zz, dc=com", "grade", 1) == ResultCode.NO_SUCH_OBJECT

    def test_access_denied(self, service):
        service.bind("uid=bob, dc=com", "builder")
        assert (
            service.compare("uid=alice, dc=com", "grade", 7)
            == ResultCode.INSUFFICIENT_ACCESS
        )


class TestMutations:
    def test_add_then_visible(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        code = service.add("uid=dave, dc=com", ["account"], uid="dave",
                           cn="dave person", userPassword="x", grade=1)
        assert code == ResultCode.SUCCESS
        assert "uid=dave, dc=com" in service.search("( ? sub ? uid=dave)").dns()

    def test_add_duplicate(self, service):
        assert (
            service.add("uid=alice, dc=com", ["account"], uid="alice")
            == ResultCode.ENTRY_ALREADY_EXISTS
        )

    def test_delete(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        assert service.delete("uid=carol, dc=com") == ResultCode.SUCCESS
        assert service.search("( ? sub ? uid=carol)").dns() == []
        assert service.delete("uid=carol, dc=com") == ResultCode.NO_SUCH_OBJECT

    def test_delete_nonleaf_refused(self, service):
        assert service.delete("dc=com") == ResultCode.UNWILLING_TO_PERFORM

    def test_modify(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        assert (
            service.modify("uid=bob, dc=com", replace={"grade": [9]})
            == ResultCode.SUCCESS
        )
        assert service.search("( ? sub ? grade>=9)").dns() == ["uid=bob, dc=com"]

    def test_modify_protected(self, service):
        assert (
            service.modify("uid=bob, dc=com", replace={"uid": ["eve"]})
            == ResultCode.UNWILLING_TO_PERFORM
        )

    def test_updates_rebuild_engine_view(self, service):
        service.bind("uid=alice, dc=com", "wonder")
        before = len(service.search("( ? sub ? objectClass=account)"))
        service.add("uid=eve, dc=com", ["account"], uid="eve",
                    cn="eve person", userPassword="p", grade=3)
        after = len(service.search("( ? sub ? objectClass=account)"))
        assert after == before + 1
