"""DirectoryService as a federation frontend: distributed reads with
degradation warnings surfacing on results, metrics and the slow log."""

import pytest

from repro.dist import (
    FaultInjector,
    FaultPlan,
    FederatedDirectory,
    RetryPolicy,
)
from repro.obs.metrics import MetricsRegistry
from repro.query.semantics import evaluate
from repro.query.parser import parse_query
from repro.server import DirectoryService
from repro.workload import random_instance


def make_frontend(plan=None, slow_query_seconds=None):
    registry = MetricsRegistry()
    instance = random_instance(29, size=100, forest_roots=2)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
    network = FaultInjector(plan or FaultPlan(), metrics=registry)
    fed = FederatedDirectory.partition(
        instance,
        assignments,
        page_size=8,
        network=network,
        leaf_cache_bytes=0,
        metrics=registry,
    )
    fed.enable_resilience(
        retry=RetryPolicy(max_attempts=2, backoff_s=0.01), serve_stale=False
    )
    service = DirectoryService(
        instance, metrics=registry, slow_query_seconds=slow_query_seconds
    )
    service.attach_federation(fed, "server0")
    remote_query = "(%s ? sub ? objectClass=*)" % roots[1]
    return instance, service, network, remote_query, registry


class TestFrontend:
    def test_attach_validates_the_coordinator(self):
        _, service, _, _, _ = make_frontend()
        fed = service._federation[0]
        with pytest.raises(KeyError):
            service.attach_federation(fed, "nonesuch")

    def test_search_is_answered_distributedly(self):
        instance, service, network, query, _ = make_frontend()
        result = service.search(query)
        expected = [str(e.dn) for e in evaluate(parse_query(query), instance)]
        assert result.dns() == expected
        assert not result.warnings
        assert network.messages == 2  # the remote leaf went over the wire

    def test_degradation_warnings_surface_on_the_result(self):
        plan = FaultPlan().crash("server1", 0.0, 1e9)
        instance, service, network, query, registry = make_frontend(plan)
        result = service.search(query)
        assert result.dns() == []
        assert any("result is partial" in w for w in result.warnings)
        assert registry.get("repro_degraded_searches_total").value() == 1

    def test_degraded_search_lands_in_the_slow_log_with_context(self):
        plan = FaultPlan().drop_message(0).crash("server1", 10.0, 1e9)
        instance, service, network, query, registry = make_frontend(
            plan, slow_query_seconds=0.0  # record everything
        )
        result = service.search(query)  # drop then retry: clean answer
        assert not result.warnings
        network.sleep(20.0)  # into the crash window
        service.search(query)
        records = service.slow_queries.records()
        assert records[0].retries == 1 and records[0].warnings == ()
        assert records[-1].warnings and "unreachable" in records[-1].warnings[0]
        payload = records[-1].as_dict()
        assert payload["warnings"] == list(records[-1].warnings)

    def test_mutations_keep_using_the_local_directory(self):
        instance, service, network, query, _ = make_frontend()
        root = next(iter(instance.roots())).dn
        before = network.attempts
        service.add("name=added, %s" % root, ["node"], name="added")
        assert service.compare("name=added, %s" % root, "name", "added")
        assert network.attempts == before  # writes never touch the network
