"""The workload observability plane wired through the service: searches
populate the digest table and heat map, mutations feed writes through the
record listener, history accrues on the search path, and firing alerts
degrade ``/healthz``."""

import json
import urllib.request

import pytest

from tests.obs.test_budget import QUERY, make_instance
from repro.obs.alerts import parse_rule
from repro.obs.metrics import MetricsRegistry
from repro.server import DirectoryService


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read())


@pytest.fixture
def service():
    svc = DirectoryService(
        make_instance(), page_size=4, metrics=MetricsRegistry()
    )
    svc.bind_anonymous()
    yield svc
    svc.close()


class TestDigestWiring:
    def test_searches_fold_into_one_fingerprint_row(self, service):
        for _ in range(5):
            service.search(QUERY)
        assert len(service.digest) == 1
        row = service.digest.top(1)[0]
        assert row.calls == 5
        # First run evaluates; the rest are exact cache hits.
        assert row.cache_hits == 4
        assert row.pages_total > 0
        assert row.entries_total == 5 * 4  # four grade-5 entries per call

    def test_cache_hits_are_not_page_charged(self, service):
        service.search(QUERY)
        engine_pages = service.digest.top(1)[0].pages_total
        service.search(QUERY)
        assert service.digest.top(1)[0].pages_total == engine_pages

    def test_acd_equivalent_spellings_share_a_row(self, service):
        # Union operands commute under ACD normalisation: one fingerprint,
        # one digest row, and the second call is an exact cache hit.
        service.search("(| (dc=com ? sub ? grade=5) (dc=com ? sub ? grade=4))")
        service.search("(| (dc=com ? sub ? grade=4) (dc=com ? sub ? grade=5))")
        assert len(service.digest) == 1
        row = service.digest.top(1)[0]
        assert row.calls == 2 and row.cache_hits == 1

    def test_digest_capacity_zero_disables(self):
        service = DirectoryService(
            make_instance(), metrics=MetricsRegistry(), digest_capacity=0
        )
        service.bind_anonymous()
        service.search(QUERY)
        assert service.digest is None

    def test_planner_qerror_lands_in_the_row(self):
        service = DirectoryService(
            make_instance(), metrics=MetricsRegistry(), planner="cost"
        )
        service.bind_anonymous()
        service.search(QUERY)
        row = service.digest.top(1)[0]
        assert row.qerror_count == 1 and row.qerror_max >= 1.0


class TestHeatmapWiring:
    def test_reads_and_writes_land_in_subtree_cells(self, service):
        service.search(QUERY)
        service.add("uid=new, dc=com", ["account"], uid="new", grade=9)
        cells = {c["subtree"]: c for c in service.heatmap.hottest(10)}
        read_cell = cells["dc=com"]
        assert read_cell.get("reads_total", 0) >= 1
        assert read_cell["pages_total"] > 0
        write_cell = cells["uid=new, dc=com"]
        assert write_cell["writes_total"] == 1

    def test_depth_zero_disables(self):
        service = DirectoryService(
            make_instance(), metrics=MetricsRegistry(), heatmap_depth=0
        )
        service.bind_anonymous()
        service.search(QUERY)
        assert service.heatmap is None

    def test_close_detaches_the_write_listener(self, service):
        directory = service.directory
        listener = service._heat_listener
        assert listener in directory._record_listeners
        service.close()
        assert listener not in directory._record_listeners


class TestFederationShipping:
    def test_remote_shipping_lands_in_the_frontends_heatmap(self):
        from repro.dist import FaultInjector, FaultPlan, FederatedDirectory
        from repro.workload import random_instance

        registry = MetricsRegistry()
        instance = random_instance(29, size=100, forest_roots=2)
        roots = sorted(
            {e.dn for e in instance.roots()}, key=lambda dn: dn.key()
        )
        fed = FederatedDirectory.partition(
            instance,
            {"server%d" % i: [root] for i, root in enumerate(roots)},
            page_size=8,
            network=FaultInjector(FaultPlan(), metrics=registry),
            leaf_cache_bytes=0,
            metrics=registry,
        )
        service = DirectoryService(
            instance, metrics=registry, heatmap_depth=1
        )
        service.bind_anonymous()
        service.attach_federation(fed, "server0")
        # attach_federation shares the frontend's map with the federation.
        assert fed.heatmap is service.heatmap
        remote_root = roots[1]
        result = service.search("(%s ? sub ? objectClass=*)" % remote_root)
        assert result.total_size > 0
        cells = {c["subtree"]: c for c in service.heatmap.hottest(10)}
        shipped = cells[str(remote_root)]["shipped_total"]
        assert shipped == result.total_size


class TestHistoryAndAlerts:
    def test_search_path_samples_history_and_evaluates_alerts(self, service):
        clock = {"now": 0.0}
        history = service.enable_workload_history(
            min_interval_s=0.0, clock=lambda: clock["now"]
        )
        engine = service.attach_alerts(
            [parse_rule("rate(repro_searches_total, 30) > 5", name="burst")]
        )
        for _ in range(20):
            service.search(QUERY)
            clock["now"] += 0.1
        assert history.taken >= 20
        assert [f["name"] for f in engine.firing()] == ["burst"]
        # Idle under the injected clock: the burst ages out and resolves.
        for _ in range(3):
            clock["now"] += 30.0
            history.sample()
            engine.evaluate()
        assert engine.firing() == []
        to = [t["to"] for t in engine.status()["transitions"]]
        assert to == ["firing", "resolved"]

    def test_healthz_degrades_while_an_alert_fires(self, service):
        clock = {"now": 0.0}
        service.enable_workload_history(
            min_interval_s=0.0, clock=lambda: clock["now"]
        )
        service.attach_alerts(
            [parse_rule("repro_searches_total >= 1", name="any-search")]
        )
        for _ in range(3):
            service.search(QUERY)
            clock["now"] += 1.0
        server = service.serve_admin()
        try:
            payload = _get(server.url + "/healthz")
            assert payload["status"] == "degraded"
            assert payload["alerts"]["firing"] == ["any-search"]
            alerts = _get(server.url + "/alerts")
            assert alerts["enabled"] is True
            assert alerts["firing"] == ["any-search"]
            digest = _get(server.url + "/digest")
            assert digest["top"][0]["calls"] == 3
            history = _get(server.url + "/history?limit=1")
            assert history["enabled"] is True and history["taken"] >= 3
        finally:
            server.stop()

    def test_attach_alerts_defaults_bootstrap_history(self, service):
        engine = service.attach_alerts()
        assert service.history is not None
        assert {r.name for r in engine.rules} == {
            "planner-qerror-p95", "replication-lag", "cache-hit-rate-floor",
        }
