"""The planner in the service path: engine choice, live statistics,
Q-error in the slow-query log, and cache-aware (superset) plans."""

import pytest

from repro.engine.engine import QueryEngine
from repro.engine.optimizer import PlannedEngine
from repro.server import DirectoryService, ResultCode
from repro.workload import balanced_instance


@pytest.fixture
def instance():
    return balanced_instance(300, fanout=4, seed=21)


def make_service(instance, **kw):
    return DirectoryService(instance, page_size=8, **kw)


class TestEngineChoice:
    def test_cost_planner_is_the_default(self, instance):
        service = make_service(instance)
        try:
            assert isinstance(service._engine_now(), PlannedEngine)
        finally:
            service.close()

    def test_planner_none_keeps_literal_engine(self, instance):
        service = make_service(instance, planner="none")
        try:
            engine = service._engine_now()
            assert isinstance(engine, QueryEngine)
            assert not isinstance(engine, PlannedEngine)
        finally:
            service.close()

    def test_unknown_planner_rejected(self, instance):
        with pytest.raises(ValueError):
            make_service(instance, planner="magic")

    def test_rewrites_applied_in_service_path(self, instance):
        service = make_service(instance, cache_bytes=0)
        try:
            result = service.search(
                "(ac ( ? sub ? name=e5) ( ? sub ? name=e1)"
                " ( ? sub ? objectClass=*))"
            )
            assert result.code == ResultCode.SUCCESS
            engine = service._engine_now()
            assert any("R1" in rule for rule in engine.last_rewrites)
        finally:
            service.close()


class TestLiveStatisticsWiring:
    def test_estimates_track_service_writes(self, instance):
        service = make_service(instance)
        try:
            engine = service._engine_now()
            before = engine.estimator.stats.total_entries
            assert before == 300
            for i in range(20):
                assert service.add(
                    "name=new%d, name=e0" % i, ["node"],
                    {"name": ["new%d" % i], "kind": ["alpha"],
                     "level": [1], "weight": [i]},
                ) == ResultCode.SUCCESS
            service.search("( ? sub ? kind=alpha)")  # compacts + replans
            engine = service._engine_now()
            assert engine.estimator.stats.total_entries == 320
        finally:
            service.close()


class TestQErrorFeedback:
    def test_slow_log_carries_qerror(self, instance):
        service = make_service(instance, slow_query_seconds=0.0, cache_bytes=0)
        try:
            service.search("( ? sub ? kind=alpha)")
            records = service.slow_queries.records()
            assert records and records[-1].qerror is not None
            assert records[-1].qerror >= 1.0
            assert "qerror" in records[-1].as_dict()
        finally:
            service.close()

    def test_cache_hit_has_no_qerror(self, instance):
        service = make_service(instance, slow_query_seconds=0.0)
        try:
            service.search("( ? sub ? kind=alpha)")
            result = service.search("( ? sub ? kind=alpha)")
            assert result.cached
            records = service.slow_queries.records()
            assert records[-1].qerror is None
            assert "qerror" not in records[-1].as_dict()
        finally:
            service.close()

    def test_literal_planner_has_no_qerror(self, instance):
        service = make_service(
            instance, planner="none", slow_query_seconds=0.0, cache_bytes=0
        )
        try:
            service.search("( ? sub ? kind=alpha)")
            assert service.slow_queries.records()[-1].qerror is None
        finally:
            service.close()

    def test_qerror_histogram_registered(self, instance):
        service = make_service(instance, cache_bytes=0)
        try:
            service.search("( ? sub ? kind=alpha)")
            histogram = service.metrics.get("repro_planner_qerror")
            assert histogram is not None and histogram.count() >= 1
        finally:
            service.close()


class TestSupersetServing:
    def test_narrow_query_served_from_wider_resident(self, instance):
        service = make_service(instance)
        try:
            wide = service.search("( ? sub ? kind=alpha)")
            assert not wide.cached
            narrow = service.search("(name=e1, name=e0 ? sub ? kind=alpha)")
            assert narrow.cached
            assert service.cache.stats.superset_hits == 1
            # Containment semantics: the narrow result is exactly the wide
            # result restricted to the subtree.
            expected = [dn for dn in wide.dns() if dn.endswith("name=e1, name=e0")]
            assert narrow.dns() == expected
        finally:
            service.close()

    def test_superset_result_matches_direct_evaluation(self, instance):
        served = make_service(instance)
        direct = make_service(instance, cache_bytes=0)
        try:
            served.search("( ? sub ? weight<50)")
            query = "(name=e2, name=e0 ? sub ? weight<50)"
            assert served.search(query).dns() == direct.search(query).dns()
        finally:
            served.close()
            direct.close()

    def test_different_filter_not_served(self, instance):
        service = make_service(instance)
        try:
            service.search("( ? sub ? kind=alpha)")
            result = service.search("(name=e1, name=e0 ? sub ? kind=beta)")
            assert not result.cached
            assert service.cache.stats.superset_hits == 0
        finally:
            service.close()

    def test_invalidation_covers_superset_residents(self, instance):
        # A write inside the wide footprint must evict the resident before
        # a narrow query could be served stale from it.
        service = make_service(instance)
        try:
            service.search("( ? sub ? kind=alpha)")
            assert service.add(
                "name=hot, name=e1, name=e0", ["node"],
                {"name": ["hot"], "kind": ["alpha"], "level": [1], "weight": [1]},
            ) == ResultCode.SUCCESS
            narrow = service.search("(name=e1, name=e0 ? sub ? kind=alpha)")
            assert "name=hot, name=e1, name=e0" in narrow.dns()
        finally:
            service.close()
