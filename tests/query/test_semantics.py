"""Definitional semantics M(Q) on a hand-built directory."""

import pytest

from repro.model.dn import DN
from repro.model.instance import DirectoryInstance
from repro.model.schema import DirectorySchema
from repro.query.parser import parse_query
from repro.query.semantics import evaluate, witness_set


@pytest.fixture(scope="module")
def inst():
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("ou", "string")
    schema.add_attribute("cn", "string")
    schema.add_attribute("n", "int")
    schema.add_attribute("ref", "distinguishedName")
    schema.add_class("dcObject", {"dc"})
    schema.add_class("organizationalUnit", {"ou"})
    schema.add_class("person", {"cn", "n", "ref"})
    i = DirectoryInstance(schema)
    i.add("dc=com", ["dcObject"], dc="com")
    i.add("dc=att, dc=com", ["dcObject"], dc="att")
    i.add("dc=research, dc=att, dc=com", ["dcObject"], dc="research")
    i.add("ou=labs, dc=research, dc=att, dc=com", ["organizationalUnit"], ou="labs")
    i.add("cn=jag, ou=labs, dc=research, dc=att, dc=com", ["person"], cn="jag", n=3)
    i.add("cn=div, ou=labs, dc=research, dc=att, dc=com", ["person"], cn="div", n=1)
    i.add("ou=sales, dc=att, dc=com", ["organizationalUnit"], ou="sales")
    i.add("cn=jag, ou=sales, dc=att, dc=com", ["person"], cn="jag", n=2,
          ref=["cn=jag, ou=labs, dc=research, dc=att, dc=com"])
    return i


def dns(query_text, inst):
    return [str(e.dn) for e in evaluate(parse_query(query_text), inst)]


class TestAtomicScopes:
    def test_base(self, inst):
        assert dns("(dc=att, dc=com ? base ? objectClass=*)", inst) == ["dc=att, dc=com"]

    def test_base_no_match(self, inst):
        assert dns("(dc=att, dc=com ? base ? cn=*)", inst) == []

    def test_one_includes_base(self, inst):
        # Definition 4.1: one-scope includes the base entry itself.
        result = dns("(dc=att, dc=com ? one ? objectClass=*)", inst)
        assert "dc=att, dc=com" in result
        assert "dc=research, dc=att, dc=com" in result
        assert "ou=sales, dc=att, dc=com" in result
        assert "ou=labs, dc=research, dc=att, dc=com" not in result

    def test_sub_includes_base_and_all(self, inst):
        result = dns("(dc=att, dc=com ? sub ? objectClass=*)", inst)
        assert len(result) == 7

    def test_null_base_covers_forest(self, inst):
        assert len(dns("( ? sub ? objectClass=*)", inst)) == len(inst)

    def test_filter_applies(self, inst):
        assert dns("(dc=com ? sub ? n>=3)", inst) == [
            "cn=jag, ou=labs, dc=research, dc=att, dc=com"
        ]

    def test_results_sorted_by_reverse_dn(self, inst):
        result = evaluate(parse_query("( ? sub ? objectClass=*)"), inst)
        keys = [e.dn.key() for e in result]
        assert keys == sorted(keys)


class TestBoolean:
    def test_and(self, inst):
        assert dns("(& (dc=com ? sub ? cn=jag) (dc=att, dc=com ? one ? objectClass=*))", inst) == []

    def test_or_dedupes(self, inst):
        result = dns("(| (dc=com ? sub ? cn=jag) (dc=com ? sub ? cn=jag))", inst)
        assert len(result) == 2

    def test_diff_example_4_1(self, inst):
        result = dns(
            "(- (dc=att, dc=com ? sub ? cn=jag)"
            "   (dc=research, dc=att, dc=com ? sub ? cn=jag))",
            inst,
        )
        assert result == ["cn=jag, ou=sales, dc=att, dc=com"]


class TestHierarchy:
    def test_children_example_5_1(self, inst):
        result = dns(
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
            "   (dc=att, dc=com ? sub ? cn=jag))",
            inst,
        )
        assert result == [
            "ou=labs, dc=research, dc=att, dc=com",
            "ou=sales, dc=att, dc=com",
        ]

    def test_parents(self, inst):
        result = dns(
            "(p (dc=com ? sub ? objectClass=person) (dc=com ? sub ? ou=labs))",
            inst,
        )
        assert result == [
            "cn=div, ou=labs, dc=research, dc=att, dc=com",
            "cn=jag, ou=labs, dc=research, dc=att, dc=com",
        ]

    def test_ancestors(self, inst):
        result = dns(
            "(a (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? dc=att))",
            inst,
        )
        assert result == ["dc=research, dc=att, dc=com"]

    def test_descendants(self, inst):
        result = dns(
            "(d (dc=com ? sub ? objectClass=dcObject) (dc=com ? sub ? cn=*))",
            inst,
        )
        assert result == ["dc=com", "dc=att, dc=com", "dc=research, dc=att, dc=com"]

    def test_dc_blocking(self, inst):
        # Nearest-dcObject semantics: dc=com does NOT qualify for persons in
        # research, because dc=att (another dcObject) intervenes.
        result = dns(
            "(dc ( ? sub ? objectClass=dcObject)"
            "    ( ? sub ? cn=jag)"
            "    ( ? sub ? objectClass=dcObject))",
            inst,
        )
        # dc=att qualifies via the sales jag (no dcObject in between);
        # dc=research via the labs jag; dc=com is blocked by dc=att.
        assert result == ["dc=att, dc=com", "dc=research, dc=att, dc=com"]

    def test_ac_blocking(self, inst):
        # Closest dcObject ancestors: for each person, only the nearest
        # dcObject above them qualifies (others blocked).
        result = dns(
            "(ac ( ? sub ? cn=*)"
            "    ( ? sub ? dc=research)"
            "    ( ? sub ? objectClass=dcObject))",
            inst,
        )
        # dc=research is the nearest dcObject ancestor of the labs people.
        assert result == [
            "cn=div, ou=labs, dc=research, dc=att, dc=com",
            "cn=jag, ou=labs, dc=research, dc=att, dc=com",
        ]

    def test_blocker_that_is_also_witness_contributes_itself(self, inst):
        # dc=att is both witness (Q2) and blocker (Q3): entries directly
        # below it still see it.
        result = dns(
            "(ac ( ? sub ? ou=*) ( ? sub ? dc=att) ( ? sub ? objectClass=dcObject))",
            inst,
        )
        assert result == ["ou=sales, dc=att, dc=com"]


class TestAggregates:
    def test_simple_count(self, inst):
        assert dns("(g ( ? sub ? objectClass=person) count(cn) >= 1)", inst) == [
            "cn=div, ou=labs, dc=research, dc=att, dc=com",
            "cn=jag, ou=labs, dc=research, dc=att, dc=com",
            "cn=jag, ou=sales, dc=att, dc=com",
        ]

    def test_min_of_min(self, inst):
        assert dns(
            "(g ( ? sub ? objectClass=person) min(n)=min(min(n)))", inst
        ) == ["cn=div, ou=labs, dc=research, dc=att, dc=com"]

    def test_count_all(self, inst):
        assert len(dns("(g ( ? sub ? objectClass=person) count($$) = 3)", inst)) == 3
        assert dns("(g ( ? sub ? objectClass=person) count($$) = 99)", inst) == []

    def test_structural_count(self, inst):
        result = dns(
            "(c ( ? sub ? objectClass=organizationalUnit)"
            "   ( ? sub ? objectClass=person) count($2) >= 2)",
            inst,
        )
        assert result == ["ou=labs, dc=research, dc=att, dc=com"]

    def test_structural_witness_attr(self, inst):
        result = dns(
            "(c ( ? sub ? objectClass=organizationalUnit)"
            "   ( ? sub ? objectClass=person) sum($2.n) >= 4)",
            inst,
        )
        assert result == ["ou=labs, dc=research, dc=att, dc=com"]


class TestEmbeddedRefs:
    def test_vd(self, inst):
        result = dns(
            "(vd ( ? sub ? objectClass=person)"
            "    (dc=research, dc=att, dc=com ? sub ? objectClass=person) ref)",
            inst,
        )
        assert result == ["cn=jag, ou=sales, dc=att, dc=com"]

    def test_dv(self, inst):
        result = dns(
            "(dv ( ? sub ? objectClass=person) ( ? sub ? objectClass=person) ref)",
            inst,
        )
        assert result == ["cn=jag, ou=labs, dc=research, dc=att, dc=com"]

    def test_dv_with_agg(self, inst):
        result = dns(
            "(dv ( ? sub ? objectClass=person) ( ? sub ? objectClass=person)"
            " ref count($2) = 0)",
            inst,
        )
        assert result == [
            "cn=div, ou=labs, dc=research, dc=att, dc=com",
            "cn=jag, ou=sales, dc=att, dc=com",
        ]


class TestWitnessSet:
    def test_direction(self, inst):
        entries = {str(e.dn): e for e in inst}
        labs = entries["ou=labs, dc=research, dc=att, dc=com"]
        people = [e for e in inst if "person" in e.classes]
        assert len(witness_set("c", labs, people)) == 2
        assert len(witness_set("d", labs, people)) == 2
        assert witness_set("p", labs, people) == []
        assert witness_set("a", labs, list(inst)) != []
