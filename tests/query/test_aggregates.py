"""Aggregate terms, filters and incremental states (Section 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.model.dn import DN
from repro.model.entry import Entry
from repro.query.aggregates import (
    AggError,
    AggSelFilter,
    AggState,
    Constant,
    EntryAggregate,
    EntrySetAggregate,
    WITNESS_COUNT_POSITIVE,
    apply_func,
)


def entry(name="x", **values):
    return Entry(DN.parse("cn=%s, dc=com" % name), ["c"], values)


class TestAggState:
    def test_count(self):
        state = AggState("count")
        state.add("anything")
        state.add_count(3)
        assert state.result() == 4

    def test_min_max_sum_average(self):
        for func, expected in (("min", 1), ("max", 9), ("sum", 15), ("average", 5)):
            state = AggState(func)
            for value in (9, 1, 5):
                state.add(value)
            assert state.result() == expected

    def test_empty_semantics(self):
        assert AggState("count").result() == 0
        assert AggState("sum").result() == 0
        assert AggState("min").result() is None
        assert AggState("max").result() is None
        assert AggState("average").result() is None

    def test_non_numeric_ignored(self):
        state = AggState("sum")
        state.add("abc")
        state.add("7")  # numeric strings count
        state.add(3)
        assert state.result() == 10

    def test_merge(self):
        a, b = AggState("min"), AggState("min")
        a.add(5)
        b.add(2)
        a.merge(b)
        assert a.result() == 2
        with pytest.raises(AggError):
            a.merge(AggState("max"))

    def test_copy_independent(self):
        a = AggState("count")
        a.add_count(2)
        b = a.copy()
        b.add_count(1)
        assert a.result() == 2 and b.result() == 3

    def test_unknown_func(self):
        with pytest.raises(AggError):
            AggState("median")


@given(st.lists(st.integers(-100, 100), max_size=30))
def test_state_matches_python_builtins(values):
    assert apply_func("count", values) == len(values)
    assert apply_func("sum", values) == sum(values)
    if values:
        assert apply_func("min", values) == min(values)
        assert apply_func("max", values) == max(values)
        assert apply_func("average", values) == pytest.approx(sum(values) / len(values))


@given(st.lists(st.integers(-50, 50), max_size=20), st.lists(st.integers(-50, 50), max_size=20))
def test_merge_equals_concatenation(left, right):
    for func in ("min", "max", "count", "sum", "average"):
        a = AggState(func)
        for v in left:
            a.add(v)
        b = AggState(func)
        for v in right:
            b.add(v)
        a.merge(b)
        assert a.result() == apply_func(func, left + right)


class TestEntryAggregate:
    def test_self_attr(self):
        ea = EntryAggregate("min", "$1", "n")
        assert ea.evaluate(entry(n=[5, 2])) == 2

    def test_witness_count(self):
        ea = EntryAggregate("count", "$2", None)
        assert ea.evaluate(entry(), [entry("a"), entry("b")]) == 2

    def test_witness_attr(self):
        ea = EntryAggregate("sum", "$2", "n")
        witnesses = [entry("a", n=[1, 2]), entry("b", n=[10])]
        assert ea.evaluate(entry(), witnesses) == 13

    def test_witness_required(self):
        ea = EntryAggregate("count", "$2", None)
        with pytest.raises(AggError):
            ea.evaluate(entry(), None)

    def test_only_count_may_omit_attribute(self):
        with pytest.raises(AggError):
            EntryAggregate("min", "$2", None)
        with pytest.raises(AggError):
            EntryAggregate("count", "$1", None)

    def test_contribution(self):
        count_term = EntryAggregate("count", "$2", None)
        assert list(count_term.witness_contribution(entry())) == [1]
        attr_term = EntryAggregate("sum", "$2", "n")
        assert list(attr_term.witness_contribution(entry(n=[4, 5]))) == [4, 5]


class TestEntrySetAggregate:
    def test_count_population(self):
        esa = EntrySetAggregate("count", None)
        population = [(entry("a"), None), (entry("b"), None)]
        assert esa.evaluate(population) == 2

    def test_min_of_min(self):
        esa = EntrySetAggregate("min", EntryAggregate("min", "$1", "n"))
        population = [(entry("a", n=[5]), None), (entry("b", n=[2, 9]), None)]
        assert esa.evaluate(population) == 2

    def test_skips_undefined_inner(self):
        esa = EntrySetAggregate("max", EntryAggregate("max", "$1", "n"))
        population = [(entry("a"), None), (entry("b", n=[3]), None)]
        assert esa.evaluate(population) == 3

    def test_only_count_on_bare_set(self):
        with pytest.raises(AggError):
            EntrySetAggregate("min", None)


class TestAggSelFilter:
    def test_basic(self):
        f = AggSelFilter(EntryAggregate("min", "$1", "n"), "<", Constant(3))
        assert f.test(entry(n=[2]), None, {})
        assert not f.test(entry(n=[5]), None, {})

    def test_undefined_is_false(self):
        f = AggSelFilter(EntryAggregate("min", "$1", "n"), "<", Constant(3))
        assert not f.test(entry(), None, {})  # no n values: min undefined

    def test_needs_witnesses(self):
        assert WITNESS_COUNT_POSITIVE.needs_witnesses()
        f = AggSelFilter(EntryAggregate("min", "$1", "n"), "<", Constant(3))
        assert not f.needs_witnesses()
        g = AggSelFilter(
            Constant(1),
            "<",
            EntrySetAggregate("max", EntryAggregate("count", "$2", None)),
        )
        assert g.needs_witnesses()

    def test_set_values_used(self):
        esa = EntrySetAggregate("max", EntryAggregate("max", "$1", "n"))
        f = AggSelFilter(EntryAggregate("max", "$1", "n"), "=", esa)
        population = [(entry("a", n=[5]), None), (entry("b", n=[2]), None)]
        set_values = {id(esa): esa.evaluate(population)}
        assert f.test(entry("a", n=[5]), None, set_values)
        assert not f.test(entry("b", n=[2]), None, set_values)

    def test_test_resolved(self):
        term = EntryAggregate("count", "$2", None)
        f = AggSelFilter(term, ">", Constant(1))
        assert f.test_resolved(entry(), {term: 2}, {})
        assert not f.test_resolved(entry(), {term: 1}, {})
        assert not f.test_resolved(entry(), {term: None}, {})

    def test_bad_op(self):
        with pytest.raises(AggError):
            AggSelFilter(Constant(1), "~", Constant(2))

    def test_bad_side(self):
        with pytest.raises(AggError):
            AggSelFilter("nope", "=", Constant(2))
