"""The fluent query builder mirrors the concrete syntax exactly."""

import pytest

from repro.query.builder import Q, QueryBuilder
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.workload import random_instance


def same(builder, text):
    assert builder.build() == parse_query(text), "%s != %s" % (builder, text)


class TestAtoms:
    def test_scopes(self):
        same(Q.base("dc=com"), "(dc=com ? base ? objectClass=*)")
        same(Q.one("dc=com"), "(dc=com ? one ? objectClass=*)")
        same(Q.sub("dc=com"), "(dc=com ? sub ? objectClass=*)")

    def test_everything(self):
        same(Q.everything(), "( ? sub ? objectClass=*)")

    def test_filters(self):
        same(Q.sub("dc=com", "kind=alpha"), "(dc=com ? sub ? kind=alpha)")
        same(
            Q.sub("dc=com").where("weight<5"),
            "(dc=com ? sub ? weight<5)",
        )

    def test_where_on_composite_rejected(self):
        with pytest.raises(TypeError):
            (Q.sub("dc=com") & Q.sub("dc=org")).where("a=1")

    def test_parse_passthrough(self):
        same(Q("(dc=com ? sub ? kind=alpha)"), "(dc=com ? sub ? kind=alpha)")


class TestCombinators:
    def test_boolean(self):
        a = Q.sub("dc=com", "kind=alpha")
        b = Q.sub("dc=com", "kind=beta")
        same(a & b, "(& (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta))")
        same(a | b, "(| (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta))")
        same(a - b, "(- (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta))")

    def test_example_4_1(self):
        query = Q.sub("dc=att, dc=com", "surName=jagadish") - Q.sub(
            "dc=research, dc=att, dc=com", "surName=jagadish"
        )
        same(
            query,
            "(- (dc=att, dc=com ? sub ? surName=jagadish)"
            "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
        )

    def test_hierarchical(self):
        a = Q.sub("dc=com", "kind=alpha")
        b = Q.sub("dc=com", "kind=beta")
        same(a.with_parent(b), "(p (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta))")
        same(a.with_child(b), "(c (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta))")
        same(a.with_ancestor(b), "(a (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta))")
        same(a.with_descendant(b), "(d (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta))")

    def test_path_constrained(self):
        a, b, c = (Q.sub("dc=com", "kind=%s" % k) for k in ("alpha", "beta", "gamma"))
        same(
            a.with_nearest_ancestor(b, unless=c),
            "(ac (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta)"
            " (dc=com ? sub ? kind=gamma))",
        )
        same(
            a.with_nearest_descendant(b, unless=c),
            "(dc (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta)"
            " (dc=com ? sub ? kind=gamma))",
        )

    def test_aggregates(self):
        a = Q.sub("dc=com", "kind=alpha")
        b = Q.sub("dc=com", "kind=beta")
        same(
            a.with_child(b, having="count($2) > 10"),
            "(c (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta) count($2) > 10)",
        )
        same(
            a.having("count(tag) >= 1"),
            "(g (dc=com ? sub ? kind=alpha) count(tag) >= 1)",
        )

    def test_embedded_refs(self):
        a = Q.sub("dc=com", "kind=alpha")
        b = Q.sub("dc=com", "kind=beta")
        same(a.referencing(b, "ref"),
             "(vd (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta) ref)")
        same(a.referenced_by(b, "ref", having="count($2) = 0"),
             "(dv (dc=com ? sub ? kind=alpha) (dc=com ? sub ? kind=beta) ref count($2) = 0)")


class TestSemanticsAndImmutability:
    def test_builders_evaluate_like_text(self):
        instance = random_instance(9, size=60)
        built = (
            Q.sub("", "kind=alpha").with_descendant(Q.sub("", "weight>=50"))
            & Q.everything()
        ).build()
        text = parse_query(
            "(& (d ( ? sub ? kind=alpha) ( ? sub ? weight>=50)) ( ? sub ? objectClass=*))"
        )
        assert [e.dn for e in evaluate(built, instance)] == [
            e.dn for e in evaluate(text, instance)
        ]

    def test_immutable(self):
        builder = Q.sub("dc=com")
        with pytest.raises(AttributeError):
            builder.query = None

    def test_reuse_is_safe(self):
        base = Q.sub("dc=com", "kind=alpha")
        first = base.with_parent(Q.everything())
        second = base.with_child(Q.everything())
        assert str(base) == "(dc=com ? sub ? kind=alpha)"
        assert first != second
