"""Query AST construction, traversal, language-level classification."""

import pytest

from repro.filters.ast import Equality, MatchAll
from repro.query.aggregates import (
    AggSelFilter,
    Constant,
    EntryAggregate,
    WITNESS_COUNT_POSITIVE,
)
from repro.query.ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    Or,
    QueryError,
    Scope,
    SimpleAggSelect,
    language_level,
)


def atomic(base="dc=com", scope=Scope.SUB):
    return AtomicQuery(base, scope, MatchAll())


class TestAtomic:
    def test_base_parsed_from_string(self):
        q = atomic()
        assert str(q.base) == "dc=com"

    def test_bad_scope(self):
        with pytest.raises(QueryError):
            AtomicQuery("dc=com", "subtree", MatchAll())

    def test_str(self):
        q = AtomicQuery("dc=com", Scope.SUB, Equality("cn", "x"))
        assert str(q) == "(dc=com ? sub ? cn=x)"


class TestBoolean:
    def test_structure(self):
        q = Diff(atomic(), And(atomic(), atomic()))
        assert q.node_count() == 5
        assert len(q.atomic_leaves()) == 3

    def test_equality(self):
        assert And(atomic(), atomic()) == And(atomic(), atomic())
        assert And(atomic(), atomic()) != Or(atomic(), atomic())


class TestHierarchySelect:
    def test_binary_ops(self):
        for op in ("p", "c", "a", "d"):
            q = HierarchySelect(op, atomic(), atomic())
            assert q.children() == (q.first, q.second)

    def test_ternary_ops(self):
        for op in ("ac", "dc"):
            q = HierarchySelect(op, atomic(), atomic(), atomic())
            assert len(q.children()) == 3

    def test_arity_enforced(self):
        with pytest.raises(QueryError):
            HierarchySelect("p", atomic(), atomic(), atomic())
        with pytest.raises(QueryError):
            HierarchySelect("ac", atomic(), atomic())

    def test_unknown_op(self):
        with pytest.raises(QueryError):
            HierarchySelect("x", atomic(), atomic())


class TestSimpleAggSelect:
    def test_rejects_witness_terms(self):
        with pytest.raises(QueryError):
            SimpleAggSelect(atomic(), WITNESS_COUNT_POSITIVE)

    def test_ok(self):
        agg = AggSelFilter(EntryAggregate("count", "$1", "tag"), ">", Constant(1))
        q = SimpleAggSelect(atomic(), agg)
        assert q.children() == (q.operand,)


class TestEmbeddedRef:
    def test_requires_attribute(self):
        with pytest.raises(QueryError):
            EmbeddedRef("vd", atomic(), atomic(), "")

    def test_unknown_op(self):
        with pytest.raises(QueryError):
            EmbeddedRef("xy", atomic(), atomic(), "ref")


class TestLanguageLevel:
    def test_l0(self):
        assert language_level(atomic()) == 0
        assert language_level(Diff(atomic(), atomic())) == 0

    def test_l1(self):
        assert language_level(HierarchySelect("c", atomic(), atomic())) == 1

    def test_l2_structural(self):
        q = HierarchySelect("c", atomic(), atomic(), agg=WITNESS_COUNT_POSITIVE)
        assert language_level(q) == 2

    def test_l2_simple(self):
        agg = AggSelFilter(EntryAggregate("min", "$1", "n"), ">", Constant(1))
        assert language_level(SimpleAggSelect(atomic(), agg)) == 2

    def test_l3(self):
        assert language_level(EmbeddedRef("vd", atomic(), atomic(), "ref")) == 3

    def test_nested_takes_max(self):
        inner = EmbeddedRef("dv", atomic(), atomic(), "ref")
        q = And(HierarchySelect("a", atomic(), atomic()), inner)
        assert language_level(q) == 3
