"""The expressiveness results (Theorems 8.1 and 8.2), exercised concretely.

Full inexpressibility proofs are meta-theoretic; these tests pin down the
*witnesses* behind each claim: the containments are shown constructively
(every LDAP query translates into L0, every Li query is an Li+1 query),
and each strictness/irredundancy claim is shown on a concrete instance
where the richer operator distinguishes situations the poorer operators
provably conflate (the same finite query pieces give identical answers,
the new operator does not).
"""

import pytest

from repro.ldapx import LDAPQuery, LDAPSession, emulate_l0, evaluate_ldap
from repro.engine import QueryEngine
from repro.model.dn import ROOT_DN
from repro.model.instance import DirectoryInstance
from repro.query.ast import AtomicQuery, language_level
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.workload import RandomQueries, random_instance, synthetic_schema


def chain(*kinds):
    """A single chain instance with the given kind per level."""
    instance = DirectoryInstance(synthetic_schema())
    dn = ROOT_DN
    for index, kind in enumerate(kinds):
        dn = dn.child("name=n%d" % index)
        instance.add(dn, ["node"], name="n%d" % index, kind=kind)
    return instance


class TestTheorem81Containments:
    """LDAP ⊆ L0 ⊆ L1 ⊆ L2 ⊆ L3, constructively."""

    @pytest.mark.parametrize("seed", range(5))
    def test_every_ldap_query_is_an_l0_query(self, seed):
        """An LDAP query with an *atomic* filter IS an atomic L0 query;
        boolean LDAP filters translate to boolean combinations of atomic
        queries over the same base and scope."""
        instance = random_instance(seed, size=60)
        engine = QueryEngine.from_instance(instance, page_size=8)
        base = list(instance)[seed].dn
        # (&(kind=alpha)(weight>=40)) over one base+scope ...
        ldap = LDAPQuery(base, "sub", "(&(kind=alpha)(weight>=40))")
        ldap_result = evaluate_ldap(engine.store, ldap).to_list()
        # ... equals the L0 conjunction of the atomic pieces.
        l0 = parse_query(
            "(& (%s ? sub ? kind=alpha) (%s ? sub ? weight>=40))" % (base, base)
        )
        assert [e.dn for e in ldap_result] == [e.dn for e in evaluate(l0, instance)]

    def test_syntactic_containments(self):
        instance = random_instance(1, size=30)
        queries = RandomQueries(instance, seed=2)
        assert language_level(queries.l0()) <= 1   # every L0 query is L1
        assert language_level(queries.l1()) <= 2   # every L1 query is L2
        assert language_level(queries.l2()) <= 3   # every L2 query is L3


class TestTheorem81Strictness:
    def test_ldap_lacks_cross_base_difference(self):
        """Example 4.1: the L0 difference needs two LDAP searches plus
        client-side work -- no single LDAP query has two bases."""
        instance = random_instance(3, size=60)
        engine = QueryEngine.from_instance(instance, page_size=8)
        roots = sorted((e.dn for e in instance.roots()), key=lambda d: d.key())
        query = parse_query(
            "(- ( ? sub ? kind=alpha) (%s ? sub ? kind=alpha))" % roots[0]
        )
        session = LDAPSession(engine.store)
        emulated = emulate_l0(session, query)
        assert [e.dn for e in emulated] == [e.dn for e in evaluate(query, instance)]
        assert session.round_trips == 2  # irreducibly two searches

    def test_l1_counts_only_existence(self):
        """L1 < L2: two instances indistinguishable by every witness-
        existence test but separated by counting."""
        one_child = chain("alpha") ; one_child.add(
            "name=c0, name=n0", ["node"], name="c0", kind="beta")
        two_children = chain("alpha")
        two_children.add("name=c0, name=n0", ["node"], name="c0", kind="beta")
        two_children.add("name=c1, name=n0", ["node"], name="c1", kind="beta")
        exists = parse_query("(c ( ? sub ? kind=alpha) ( ? sub ? kind=beta))")
        # The L1 existence query cannot tell the instances apart ...
        assert [str(e.dn) for e in evaluate(exists, one_child)] == [
            str(e.dn) for e in evaluate(exists, two_children)
        ]
        # ... the L2 counting query can.
        count2 = parse_query(
            "(c ( ? sub ? kind=alpha) ( ? sub ? kind=beta) count($2) >= 2)"
        )
        assert evaluate(count2, one_child) == []
        assert len(evaluate(count2, two_children)) == 1

    def test_l2_cannot_see_references(self):
        """L2 < L3: two instances with identical namespaces (so every
        hierarchical/aggregate query agrees) but different references."""
        with_ref = DirectoryInstance(synthetic_schema())
        with_ref.add("name=a", ["node"], name="a")
        with_ref.add("name=b", ["node"], name="b", ref=["name=a"])
        without_ref = DirectoryInstance(synthetic_schema())
        without_ref.add("name=a", ["node"], name="a")
        without_ref.add("name=b", ["node"], name="b")
        hier = parse_query("(d ( ? sub ? objectClass=*) ( ? sub ? name=b))")
        assert [str(e.dn) for e in evaluate(hier, with_ref)] == [
            str(e.dn) for e in evaluate(hier, without_ref)
        ]
        l3 = parse_query("(vd ( ? sub ? name=b) ( ? sub ? name=a) ref)")
        assert len(evaluate(l3, with_ref)) == 1
        assert evaluate(l3, without_ref) == []


class TestTheorem82Irredundancy:
    """The witnesses behind the operator-set separations: instances where
    the operator families give genuinely different answers."""

    def test_children_differs_from_descendants(self):
        # a/d see through multiple levels; c/p see exactly one.
        instance = chain("alpha", "gamma", "beta")
        c_result = evaluate(
            parse_query("(c ( ? sub ? kind=alpha) ( ? sub ? kind=beta))"), instance
        )
        d_result = evaluate(
            parse_query("(d ( ? sub ? kind=alpha) ( ? sub ? kind=beta))"), instance
        )
        assert c_result == []         # beta is a grandchild, not a child
        assert len(d_result) == 1     # but it is a descendant

    def test_parents_differs_from_ancestors(self):
        instance = chain("beta", "gamma", "alpha")
        p_result = evaluate(
            parse_query("(p ( ? sub ? kind=alpha) ( ? sub ? kind=beta))"), instance
        )
        a_result = evaluate(
            parse_query("(a ( ? sub ? kind=alpha) ( ? sub ? kind=beta))"), instance
        )
        assert p_result == []
        assert len(a_result) == 1

    def test_ac_distinguishes_blocked_from_unblocked(self):
        # Same binary-operator answers, different ac answers.
        blocked = chain("beta", "gamma", "alpha")    # gamma between
        unblocked = chain("beta", "delta", "alpha")  # delta is no blocker
        binary = parse_query("(a ( ? sub ? kind=alpha) ( ? sub ? kind=beta))")
        assert len(evaluate(binary, blocked)) == len(evaluate(binary, unblocked)) == 1
        ac = parse_query(
            "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? kind=gamma))"
        )
        assert evaluate(ac, blocked) == []
        assert len(evaluate(ac, unblocked)) == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_82d_ac_expresses_p(self, seed):
        """Theorem 8.2(d): (p Q1 Q2) = (ac Q1 Q2 whole-instance), at the
        cost Section 8.1 warns about (measured in E10)."""
        instance = random_instance(seed + 70, size=70)
        queries = RandomQueries(instance, seed=seed)
        q1 = queries.l0()
        q2 = queries.l0()
        p = parse_query("(p %s %s)" % (q1, q2))
        ac = parse_query("(ac %s %s ( ? sub ? objectClass=*))" % (q1, q2))
        assert [e.dn for e in evaluate(p, instance)] == [
            e.dn for e in evaluate(ac, instance)
        ]

    @pytest.mark.parametrize("seed", range(6))
    def test_82d_dc_expresses_c(self, seed):
        instance = random_instance(seed + 80, size=70)
        queries = RandomQueries(instance, seed=seed)
        q1 = queries.l0()
        q2 = queries.l0()
        c = parse_query("(c %s %s)" % (q1, q2))
        dc = parse_query("(dc %s %s ( ? sub ? objectClass=*))" % (q1, q2))
        assert [e.dn for e in evaluate(c, instance)] == [
            e.dn for e in evaluate(dc, instance)
        ]
