"""Query normalisation: canonical forms and semantic preservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.query.normalize import equivalent_modulo_acd, normalize
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.workload import RandomQueries, random_instance

A = "( ? sub ? kind=alpha)"
B = "( ? sub ? kind=beta)"
C = "( ? sub ? kind=gamma)"


def norm(text):
    return str(normalize(parse_query(text)))


class TestCanonicalForms:
    def test_commutativity(self):
        assert norm("(& %s %s)" % (A, B)) == norm("(& %s %s)" % (B, A))
        assert norm("(| %s %s)" % (A, B)) == norm("(| %s %s)" % (B, A))

    def test_associativity(self):
        left = "(& (& %s %s) %s)" % (A, B, C)
        right = "(& %s (& %s %s))" % (A, B, C)
        assert norm(left) == norm(right)

    def test_idempotence_with_commuted_duplicates(self):
        doubled = "(& (& %s %s) (& %s %s))" % (A, B, B, A)
        assert norm(doubled) == norm("(& %s %s)" % (A, B))

    def test_difference_not_commuted(self):
        assert norm("(- %s %s)" % (A, B)) != norm("(- %s %s)" % (B, A))

    def test_mixed_operators_not_flattened_together(self):
        # (& A (| B C)) stays structurally an and-over-or.
        text = "(& %s (| %s %s))" % (A, B, C)
        assert "(|" in norm(text)

    def test_normalises_inside_operators(self):
        hier = "(c (& %s %s) (& %s %s))" % (B, A, A, B)
        normalized = normalize(parse_query(hier))
        assert str(normalized.first) == str(normalized.second)

    def test_equivalence_predicate(self):
        assert equivalent_modulo_acd(
            parse_query("(& %s %s)" % (A, B)), parse_query("(& %s %s)" % (B, A))
        )
        assert not equivalent_modulo_acd(
            parse_query("(& %s %s)" % (A, B)), parse_query("(| %s %s)" % (A, B))
        )


class TestSemanticsPreserved:
    @given(st.integers(0, 5000), st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_normalize_preserves_answers(self, instance_seed, query_seed):
        instance = random_instance(instance_seed, size=40)
        query = RandomQueries(instance, seed=query_seed).any_level(depth=2)
        assert [e.dn for e in evaluate(normalize(query), instance)] == [
            e.dn for e in evaluate(query, instance)
        ], str(query)

    def test_rewrite_pipeline_catches_commuted_duplicates(self):
        from repro.engine.optimizer import rewrite

        doubled = parse_query("(& (& %s %s) (& %s %s))" % (A, B, B, A))
        rewritten, rules = rewrite(doubled)
        assert any("R0" in rule for rule in rules)
        # After normalisation the two operands are identical and R2 fires.
        assert str(rewritten) == norm("(& %s %s)" % (A, B))
