"""Schema-aware query validation."""

import pytest

from repro.model.standard import standard_schema
from repro.query.parser import parse_query
from repro.query.typecheck import QueryTypeError, check_query, validate_query
from repro.workload import synthetic_schema


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema()


class TestCleanQueries:
    @pytest.mark.parametrize(
        "text",
        [
            "( ? sub ? kind=alpha)",
            "( ? sub ? weight<5)",
            "( ? sub ? tag=*red*)",
            "(c ( ? sub ? kind=alpha) ( ? sub ? weight>=1) count($2) > 1)",
            "(g ( ? sub ? objectClass=node) min(weight) < 3)",
            "(vd ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ref)",
        ],
    )
    def test_no_problems(self, schema, text):
        assert validate_query(parse_query(text), schema) == []
        check_query(parse_query(text), schema)


class TestProblems:
    def test_undeclared_attribute(self, schema):
        problems = validate_query(parse_query("( ? sub ? colour=red)"), schema)
        assert any("undeclared attribute 'colour'" in p for p in problems)

    def test_comparison_on_string(self, schema):
        problems = validate_query(parse_query("( ? sub ? kind<3)"), schema)
        assert any("requires an int attribute" in p for p in problems)

    def test_wildcard_on_int(self, schema):
        problems = validate_query(parse_query("( ? sub ? weight=*5*)"), schema)
        assert any("requires a string attribute" in p for p in problems)

    def test_ref_operator_on_non_dn_attribute(self, schema):
        problems = validate_query(
            parse_query("(vd ( ? sub ? kind=alpha) ( ? sub ? kind=beta) name)"),
            schema,
        )
        assert any("distinguishedName" in p for p in problems)

    def test_numeric_aggregate_on_string(self, schema):
        problems = validate_query(
            parse_query("(g ( ? sub ? objectClass=node) min(kind) < 3)"), schema
        )
        assert any("needs int values" in p for p in problems)

    def test_count_on_string_is_fine(self, schema):
        assert validate_query(
            parse_query("(g ( ? sub ? objectClass=node) count(kind) >= 1)"), schema
        ) == []

    def test_aggregate_undeclared_attribute(self, schema):
        problems = validate_query(
            parse_query("(c ( ? sub ? kind=a) ( ? sub ? kind=b) sum($2.bogus) > 1)"),
            schema,
        )
        assert any("undeclared attribute 'bogus'" in p for p in problems)

    def test_nested_boolean_filters_checked(self, schema):
        from repro.filters.parser import parse_filter
        from repro.ldapx import LDAPQuery

        # Check via the query AST: wrap a composite filter manually.
        from repro.query.ast import AtomicQuery

        query = AtomicQuery("", "sub", parse_filter("(&(kind=a)(bogus=1))"))
        problems = validate_query(query, schema)
        assert any("bogus" in p for p in problems)

    def test_check_query_raises(self, schema):
        with pytest.raises(QueryTypeError):
            check_query(parse_query("( ? sub ? colour=red)"), schema)

    def test_multiple_problems_all_reported(self, schema):
        problems = validate_query(
            parse_query("(& ( ? sub ? colour=red) ( ? sub ? kind<3))"), schema
        )
        assert len(problems) == 2
