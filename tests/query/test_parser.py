"""Concrete query syntax: the paper's own query strings must parse."""

import pytest

from repro.query.aggregates import Constant, EntryAggregate, EntrySetAggregate
from repro.query.ast import (
    And,
    AtomicQuery,
    Diff,
    EmbeddedRef,
    HierarchySelect,
    SimpleAggSelect,
)
from repro.query.parser import QueryParseError, parse_aggsel, parse_query


class TestAtomic:
    def test_basic(self):
        q = parse_query("(dc=att, dc=com ? sub ? surName=jagadish)")
        assert isinstance(q, AtomicQuery)
        assert str(q.base) == "dc=att, dc=com"
        assert q.scope == "sub"

    def test_null_base(self):
        q = parse_query("( ? sub ? objectClass=*)")
        assert q.base.is_null()

    def test_all_scopes(self):
        for scope in ("base", "one", "sub"):
            q = parse_query("(dc=com ? %s ? cn=*)" % scope)
            assert q.scope == scope

    def test_wrong_part_count(self):
        with pytest.raises(QueryParseError):
            parse_query("(dc=com ? sub)")

    def test_bad_scope(self):
        with pytest.raises(QueryParseError):
            parse_query("(dc=com ? everywhere ? cn=*)")


class TestPaperQueries:
    """Every query string printed in the paper parses to the right shape."""

    def test_example_4_1_difference(self):
        q = parse_query(
            "(- (dc=att, dc=com ? sub ? surName=jagadish)"
            "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))"
        )
        assert isinstance(q, Diff)

    def test_example_5_1_children(self):
        q = parse_query(
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
            "   (dc=att, dc=com ? sub ? surName=jagadish))"
        )
        assert isinstance(q, HierarchySelect) and q.op == "c" and q.agg is None

    def test_example_5_2_ancestors(self):
        q = parse_query(
            "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
            "   (dc=att, dc=com ? sub ? ou=networkPolicies))"
        )
        assert q.op == "a"

    def test_example_5_3_path_constrained(self):
        q = parse_query(
            "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
            "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
            "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
            "    (dc=att, dc=com ? sub ? objectClass=dcObject))"
        )
        assert q.op == "dc"
        assert isinstance(q.second, And)
        assert q.third is not None

    def test_example_6_1_simple_agg(self):
        q = parse_query(
            "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
            "   count(SLAPVPRef) > 1)"
        )
        assert isinstance(q, SimpleAggSelect)
        assert str(q.agg.left) == "count($1.SLAPVPRef)"
        assert q.agg.op == ">"
        assert q.agg.right == Constant(1)

    def test_example_6_2_structural_agg(self):
        q = parse_query(
            "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)"
            "   (dc=att, dc=com ? sub ? objectClass=QHP)"
            "   count($2) > 10)"
        )
        assert q.op == "c"
        assert q.agg is not None
        assert q.agg.left == EntryAggregate("count", "$2", None)

    def test_example_7_1_vd(self):
        q = parse_query(
            "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
            "    (& (dc=att, dc=com ? sub ? sourcePort=25)"
            "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
            "    SLATPRef)"
        )
        assert isinstance(q, EmbeddedRef) and q.op == "vd"
        assert q.attribute == "SLATPRef"

    def test_example_7_1_nested_dv(self):
        q = parse_query(
            "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
            "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
            "           (& (dc=att, dc=com ? sub ? sourcePort=25)"
            "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
            "           SLATPRef)"
            "       min(SLARulePriority)=min(min(SLARulePriority)))"
            "    SLADSActRef)"
        )
        assert q.op == "dv"
        assert isinstance(q.second, SimpleAggSelect)
        assert isinstance(q.second.operand, EmbeddedRef)

    def test_section_8_1_p_via_ac(self):
        q = parse_query(
            "(ac (dc=a, dc=com ? sub ? cn=*) (dc=b, dc=com ? sub ? cn=*)"
            "    ( ? sub ? objectClass=*))"
        )
        assert q.op == "ac" and q.third is not None


class TestAggSel:
    def test_count_forms(self):
        assert parse_aggsel("count($$) > 3").left == EntrySetAggregate("count", None)
        assert parse_aggsel("count($1) > 3").left == EntrySetAggregate("count", None)
        assert parse_aggsel("count($2) > 3").left == EntryAggregate("count", "$2", None)

    def test_dollar_prefixes(self):
        agg = parse_aggsel("min($2.weight) <= max($1.weight)")
        assert agg.left == EntryAggregate("min", "$2", "weight")
        assert agg.right == EntryAggregate("max", "$1", "weight")

    def test_nested_entry_set(self):
        agg = parse_aggsel("min(SLARulePriority)=min(min(SLARulePriority))")
        assert agg.right == EntrySetAggregate(
            "min", EntryAggregate("min", "$1", "SLARulePriority")
        )

    def test_all_int_ops(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            assert parse_aggsel("count($2) %s 1" % op).op == op

    def test_bad_function(self):
        with pytest.raises(QueryParseError):
            parse_aggsel("median(x) > 1")

    def test_non_count_on_dollars(self):
        with pytest.raises(QueryParseError):
            parse_aggsel("min($$) > 1")
        with pytest.raises(QueryParseError):
            parse_aggsel("sum($2) > 1")

    def test_missing_operator(self):
        with pytest.raises(QueryParseError):
            parse_aggsel("count($2)")


class TestRobustness:
    def test_trailing_garbage(self):
        with pytest.raises(QueryParseError):
            parse_query("(dc=com ? sub ? cn=*) extra")

    def test_unbalanced(self):
        with pytest.raises(QueryParseError):
            parse_query("(& (dc=com ? sub ? cn=*)")

    def test_g_requires_filter(self):
        with pytest.raises(QueryParseError):
            parse_query("(g (dc=com ? sub ? cn=*))")

    def test_vd_requires_attribute(self):
        with pytest.raises(QueryParseError):
            parse_query("(vd (dc=com ? sub ? cn=*) (dc=com ? sub ? cn=*))")

    def test_question_mark_in_value_reports_clearly(self):
        # Documented limitation of the concrete syntax: a literal '?' in a
        # value splits the atomic query into too many parts.
        with pytest.raises(QueryParseError) as err:
            parse_query("(dc=com ? sub ? cn=what?)")
        assert "base ? scope ? filter" in str(err.value)
        # The builder API has no such restriction.
        from repro.filters.ast import Equality
        from repro.query.builder import Q

        built = Q.sub("dc=com", Equality("cn", "what?")).build()
        assert isinstance(built, AtomicQuery)

    def test_roundtrip_via_str(self):
        texts = [
            "(- (dc=att, dc=com ? sub ? surName=jagadish)"
            " (dc=research, dc=att, dc=com ? sub ? surName=jagadish))",
            "(c (dc=com ? sub ? objectClass=x) (dc=com ? sub ? cn=*) count($2) > 10)",
            "(vd (dc=com ? sub ? cn=*) (dc=com ? sub ? cn=*) ref)",
        ]
        for text in texts:
            q = parse_query(text)
            assert parse_query(str(q)) == q
