"""The LDAP baseline: single-base/scope queries and client emulation."""

import pytest

from repro.engine import QueryEngine
from repro.filters.parser import parse_filter
from repro.ldapx import LDAPQuery, LDAPSession, emulate_children, emulate_l0, evaluate_ldap
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.workload import RandomQueries, random_instance


@pytest.fixture(scope="module")
def setup():
    instance = random_instance(7, size=120)
    engine = QueryEngine.from_instance(instance, page_size=8, buffer_pages=6)
    return instance, engine


class TestLDAPQuery:
    def test_boolean_filter_single_scan(self, setup):
        instance, engine = setup
        query = LDAPQuery("", "sub", "(&(kind=alpha)(weight>=50))")
        run = evaluate_ldap(engine.store, query)
        expected = [
            e.dn
            for e in instance
            if "alpha" in map(str, e.values("kind"))
            and any(isinstance(v, int) and v >= 50 for v in e.values("weight"))
        ]
        assert [e.dn for e in run.to_list()] == expected

    def test_not_filter(self, setup):
        instance, engine = setup
        query = LDAPQuery("", "sub", "(!(kind=alpha))")
        run = evaluate_ldap(engine.store, query)
        expected = [e.dn for e in instance if "alpha" not in map(str, e.values("kind"))]
        assert [e.dn for e in run.to_list()] == expected

    def test_scopes_match_l0(self, setup):
        """By construction our LDAP scopes equal Definition 4.1's."""
        instance, engine = setup
        base = list(instance)[10].dn
        for scope in ("base", "one", "sub"):
            ldap = evaluate_ldap(
                engine.store, LDAPQuery(base, scope, "(objectClass=*)")
            )
            l0 = evaluate(
                parse_query("(%s ? %s ? objectClass=*)" % (base, scope)), instance
            )
            assert [e.dn for e in ldap.to_list()] == [e.dn for e in l0]

    def test_bad_scope(self):
        with pytest.raises(ValueError):
            LDAPQuery("dc=com", "tree", "(a=1)")

    def test_str(self):
        q = LDAPQuery("dc=com", "sub", "(cn=x)")
        assert "ldapsearch" in str(q)


class TestEmulation:
    @pytest.mark.parametrize("seed", range(8))
    def test_emulate_l0_correct(self, setup, seed):
        instance, engine = setup
        queries = RandomQueries(instance, seed=seed)
        query = queries.l0(depth=2)
        session = LDAPSession(engine.store)
        got = [str(e.dn) for e in emulate_l0(session, query)]
        expected = [str(e.dn) for e in evaluate(query, instance)]
        assert got == expected
        assert session.round_trips == len(query.atomic_leaves())

    def test_emulate_l0_rejects_higher_levels(self, setup):
        instance, engine = setup
        queries = RandomQueries(instance, seed=0)
        session = LDAPSession(engine.store)
        with pytest.raises(ValueError):
            emulate_l0(session, queries.l1())

    def test_round_trips_counted(self, setup):
        _instance, engine = setup
        session = LDAPSession(engine.store)
        session.search("", "sub", "(kind=alpha)")
        session.search("", "sub", "(kind=beta)")
        assert session.round_trips == 2
        assert session.entries_shipped > 0

    def test_emulate_children_matches_l1(self, setup):
        """The navigational emulation agrees with the one-shot L1 query --
        at many round trips instead of one."""
        instance, engine = setup
        first = parse_query("( ? sub ? kind=alpha)")
        child_filter = parse_filter("weight>=1")
        session = LDAPSession(engine.store)
        got = [str(e.dn) for e in emulate_children(session, first, child_filter)]
        l1 = parse_query("(c ( ? sub ? kind=alpha) ( ? sub ? weight>=1))")
        expected = [str(e.dn) for e in evaluate(l1, instance)]
        assert got == expected
        candidates = len(evaluate(first, instance))
        assert session.round_trips == candidates + 1  # one probe each + the fetch
