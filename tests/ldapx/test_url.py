"""RFC 2255 LDAP URLs (the paper's reference [19])."""

import pytest

from repro.ldapx.url import LDAPUrl, LDAPUrlError, format_ldap_url, parse_ldap_url
from repro.model.dn import DN


class TestParse:
    def test_full_url(self):
        parsed = parse_ldap_url(
            "ldap://ldap.att.com:389/dc=att,dc=com?cn,mail?sub?(surName=jagadish)"
        )
        assert parsed.host == "ldap.att.com"
        assert parsed.port == 389
        assert parsed.base == DN.parse("dc=att, dc=com")
        assert parsed.attributes == ("cn", "mail")
        assert parsed.scope == "sub"
        assert parsed.filter_text == "(surName=jagadish)"

    def test_defaults(self):
        parsed = parse_ldap_url("ldap:///dc=com")
        assert parsed.host is None
        assert parsed.port is None
        assert parsed.scope == "base"
        assert parsed.filter_text == "(objectClass=*)"
        assert parsed.attributes == ()

    def test_empty_dn(self):
        parsed = parse_ldap_url("ldap://host/")
        assert parsed.base.is_null()

    def test_percent_escapes(self):
        parsed = parse_ldap_url("ldap:///dc=att%2Cdc=com??sub?(cn=a%20b)")
        assert parsed.base == DN.parse("dc=att, dc=com")
        assert parsed.filter_text == "(cn=a b)"

    def test_ldaps(self):
        assert parse_ldap_url("ldaps://secure/dc=com").scheme == "ldaps"

    def test_extensions_ignored(self):
        parsed = parse_ldap_url("ldap:///dc=com??sub?(cn=x)?bindname=cn=admin")
        assert parsed.filter_text == "(cn=x)"

    def test_errors(self):
        for bad in (
            "http://host/dc=com",
            "ldap://host:notaport/dc=com",
            "ldap://host:99999/dc=com",
            "ldap:///dc=com??everywhere?(cn=x)",
            "ldap:///dc=com??sub?(cn=x)?e1?too-many",
        ):
            with pytest.raises(LDAPUrlError):
                parse_ldap_url(bad)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "url",
        [
            "ldap://ldap.att.com:389/dc=att, dc=com?cn,mail?sub?(surName=jagadish)",
            "ldap:///?cn?one?(objectClass=*)",
            "ldaps://h/ou=x, dc=com??base?(&(a=1)(b=2))",
        ],
    )
    def test_parse_format_parse(self, url):
        first = parse_ldap_url(url)
        second = parse_ldap_url(format_ldap_url(first))
        assert first == second

    def test_to_query(self):
        parsed = parse_ldap_url("ldap:///dc=com??sub?(&(cn=x)(n<3))")
        query = parsed.to_query()
        assert query.scope == "sub"
        assert str(query.base) == "dc=com"
