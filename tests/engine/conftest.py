"""Shared fixtures for the engine tests."""

import random

import pytest

from repro.storage.pager import Pager
from repro.storage.runs import run_from_iterable
from repro.workload import random_instance


@pytest.fixture
def pager():
    return Pager(page_size=8, buffer_pages=6)


def sorted_run(pager, entries):
    """Write entries (any order) as a reverse-dn-sorted run."""
    ordered = sorted(entries, key=lambda e: e.dn.key())
    return run_from_iterable(pager, ordered)


def random_sublists(seed, size=100, lists=2):
    """A random instance plus ``lists`` random sorted entry subsets."""
    instance = random_instance(seed, size=size)
    entries = list(instance)
    rng = random.Random(seed * 7 + 1)
    subsets = []
    for _ in range(lists):
        subset = rng.sample(entries, rng.randint(0, len(entries)))
        subsets.append(sorted(subset, key=lambda e: e.dn.key()))
    return instance, subsets
