"""Property-based differential testing: hypothesis drives instance shape
and query choice; the external-memory engine must always agree with the
definitional semantics, under any blocking factor and pool size."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import QueryEngine
from repro.engine.optimizer import PlannedEngine, rewrite
from repro.query.semantics import evaluate
from repro.storage.store import DirectoryStore
from repro.workload import RandomQueries, random_instance

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    instance_seed=st.integers(0, 10_000),
    query_seed=st.integers(0, 10_000),
    size=st.integers(5, 70),
    max_children=st.integers(1, 6),
    page_size=st.integers(2, 16),
    buffer_pages=st.integers(2, 8),
    level=st.sampled_from(["l0", "l1", "l2", "l3"]),
)
@settings(**_SETTINGS)
def test_engine_agrees_with_semantics(
    instance_seed, query_seed, size, max_children, page_size, buffer_pages, level
):
    instance = random_instance(instance_seed, size=size, max_children=max_children)
    engine = QueryEngine.from_instance(
        instance, page_size=page_size, buffer_pages=buffer_pages
    )
    query = getattr(RandomQueries(instance, seed=query_seed), level)()
    expected = [str(e.dn) for e in evaluate(query, instance)]
    assert engine.run(query).dns() == expected, str(query)


@given(
    instance_seed=st.integers(0, 10_000),
    query_seed=st.integers(0, 10_000),
    size=st.integers(5, 60),
)
@settings(**_SETTINGS)
def test_planned_engine_agrees(instance_seed, query_seed, size):
    instance = random_instance(instance_seed, size=size)
    store = DirectoryStore.from_instance(instance, page_size=8)
    store.build_indices(
        int_attributes=("weight",), string_attributes=("kind", "name")
    )
    engine = PlannedEngine(store)
    query = RandomQueries(instance, seed=query_seed).any_level()
    expected = [str(e.dn) for e in evaluate(query, instance)]
    assert engine.run(query).dns() == expected, str(query)


@given(
    instance_seed=st.integers(0, 10_000),
    query_seed=st.integers(0, 10_000),
)
@settings(**_SETTINGS)
def test_rewrite_is_semantics_preserving(instance_seed, query_seed):
    instance = random_instance(instance_seed, size=40)
    query = RandomQueries(instance, seed=query_seed).any_level(depth=2)
    rewritten, _rules = rewrite(query)
    assert [e.dn for e in evaluate(rewritten, instance)] == [
        e.dn for e in evaluate(query, instance)
    ], str(query)
