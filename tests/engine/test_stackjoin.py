"""The generalised stack pass: annotations vs definitional witness sets."""

import pytest

from repro.engine.stackjoin import hierarchical_annotate
from repro.query.aggregates import EntryAggregate
from repro.query.semantics import witness_set
from repro.storage.pager import Pager

from .conftest import random_sublists, sorted_run

COUNT = EntryAggregate("count", "$2", None)
SUM_WEIGHT = EntryAggregate("sum", "$2", "weight")
MIN_WEIGHT = EntryAggregate("min", "$2", "weight")


def annotate(op, seed, terms, size=90):
    lists = 3 if op in ("ac", "dc") else 2
    _instance, subsets = random_sublists(seed, size=size, lists=lists)
    pager = Pager(page_size=8, buffer_pages=6)
    runs = [sorted_run(pager, subset) for subset in subsets]
    third = runs[2] if lists == 3 else None
    annotated = hierarchical_annotate(pager, op, runs[0], runs[1], third, terms)
    return subsets, annotated.to_list()


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("op", ["p", "c", "a", "d", "ac", "dc"])
def test_count_matches_witness_sets(op, seed):
    subsets, annotated = annotate(op, seed, [COUNT])
    first, second = subsets[0], subsets[1]
    third = subsets[2] if len(subsets) == 3 else None
    assert [entry.dn for entry, _ in annotated] == [e.dn for e in first]
    for entry, (count,) in annotated:
        expected = len(witness_set(op, entry, second, third))
        assert count == expected, "%s at %s" % (op, entry.dn)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("op", ["c", "d", "a", "p", "ac", "dc"])
def test_attribute_aggregates_match(op, seed):
    subsets, annotated = annotate(op, seed, [SUM_WEIGHT, MIN_WEIGHT, COUNT])
    second = subsets[1]
    third = subsets[2] if len(subsets) == 3 else None
    for entry, (total, minimum, count) in annotated:
        witnesses = witness_set(op, entry, second, third)
        values = [v for w in witnesses for v in w.values("weight")]
        assert count == len(witnesses)
        assert total == sum(values)
        assert minimum == (min(values) if values else None)


def test_output_sorted_and_complete():
    subsets, annotated = annotate("d", 11, [COUNT], size=200)
    keys = [entry.dn.key() for entry, _ in annotated]
    assert keys == sorted(keys)
    assert len(annotated) == len(subsets[0])


def test_arity_validation(pager):
    run = sorted_run(pager, [])
    with pytest.raises(ValueError):
        hierarchical_annotate(pager, "p", run, run, run)
    with pytest.raises(ValueError):
        hierarchical_annotate(pager, "ac", run, run, None)
    with pytest.raises(ValueError):
        hierarchical_annotate(pager, "zz", run, run)


def test_linear_io_with_tiny_pool():
    """The stack pass completes in a 3-page pool with linear I/O."""
    _instance, (first, second) = random_sublists(2, size=3000)
    pager = Pager(page_size=16, buffer_pages=3)
    first_run = sorted_run(pager, first)
    second_run = sorted_run(pager, second)
    pager.flush()
    before = pager.stats.snapshot()
    annotated = hierarchical_annotate(pager, "d", first_run, second_run, None, [COUNT])
    delta = pager.stats.since(before)
    input_pages = first_run.page_count + second_run.page_count
    # Inputs once, annotated output written (plus spill-list page traffic,
    # each output record rides a spill page at most once in and once out).
    assert delta.total <= 3 * (input_pages + 2 * annotated.page_count) + 8
