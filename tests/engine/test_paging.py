"""Size limits and paged retrieval."""

import pytest

from repro.engine import QueryEngine
from repro.engine.paging import PagedSearch, run_limited
from repro.workload import balanced_instance

QUERY = "( ? sub ? kind=alpha)"


@pytest.fixture(scope="module")
def engine():
    return QueryEngine.from_instance(balanced_instance(800, seed=5), page_size=8)


@pytest.fixture(scope="module")
def full_answer(engine):
    return engine.run(QUERY).dns()


class TestSizeLimit:
    def test_truncation(self, engine, full_answer):
        limited = run_limited(engine, QUERY, size_limit=5)
        assert limited.truncated
        assert len(limited) == 5
        assert limited.total_size == len(full_answer)
        assert limited.dns() == full_answer[:5]

    def test_no_truncation_when_under_limit(self, engine, full_answer):
        limited = run_limited(engine, QUERY, size_limit=len(full_answer) + 10)
        assert not limited.truncated
        assert limited.dns() == full_answer

    def test_bad_limit(self, engine):
        with pytest.raises(ValueError):
            run_limited(engine, QUERY, size_limit=0)


class TestPagedSearch:
    def test_pages_partition_the_answer(self, engine, full_answer):
        cursor = PagedSearch(engine, QUERY, page_entries=7)
        assert cursor.total_size == len(full_answer)
        collected = []
        for page in cursor:
            assert 1 <= len(page) <= 7
            collected.extend(str(e.dn) for e in page)
        assert collected == full_answer
        assert cursor.delivered == len(full_answer)

    def test_next_page_protocol(self, engine, full_answer):
        cursor = PagedSearch(engine, QUERY, page_entries=len(full_answer))
        first = cursor.next_page()
        assert len(first) == len(full_answer)
        assert cursor.next_page() is None
        assert cursor.next_page() is None  # idempotent after close

    def test_context_manager_frees(self, engine):
        with PagedSearch(engine, QUERY, page_entries=3) as cursor:
            cursor.next_page()
        assert cursor.next_page() is None

    def test_empty_answer(self, engine):
        cursor = PagedSearch(engine, "( ? sub ? kind=nosuch)", page_entries=4)
        assert cursor.total_size == 0
        assert cursor.next_page() is None

    def test_bad_page_size(self, engine):
        with pytest.raises(ValueError):
            PagedSearch(engine, QUERY, page_entries=0)
