"""Operator-level tests: hierarchical_select, simple_agg_select,
embedded_ref_select and the selection phase, against the definitional
semantics."""

import pytest

from repro.engine.eragg import embedded_ref_select
from repro.engine.hsagg import hierarchical_select
from repro.engine.selection import select_annotated
from repro.engine.simpleagg import simple_agg_select
from repro.query.aggregates import (
    AggSelFilter,
    Constant,
    EntryAggregate,
    EntrySetAggregate,
)
from repro.query.semantics import witness_set
from repro.storage.pager import Pager
from repro.storage.runs import run_from_iterable

from .conftest import random_sublists, sorted_run

COUNT = EntryAggregate("count", "$2", None)


class TestHierarchicalSelect:
    @pytest.mark.parametrize("op", ["p", "c", "a", "d"])
    def test_plain_equals_nonempty_witness(self, op):
        _instance, (first, second) = random_sublists(5, size=100)
        pager = Pager(page_size=8, buffer_pages=6)
        out = hierarchical_select(
            pager, op, sorted_run(pager, first), sorted_run(pager, second)
        )
        expected = [e.dn for e in first if witness_set(op, e, second)]
        assert [e.dn for e in out.to_list()] == expected

    def test_aggregate_global_max(self):
        _instance, (first, second) = random_sublists(8, size=120)
        pager = Pager(page_size=8, buffer_pages=6)
        agg = AggSelFilter(COUNT, "=", EntrySetAggregate("max", COUNT))
        out = hierarchical_select(
            pager, "d", sorted_run(pager, first), sorted_run(pager, second), None, agg
        )
        counts = {e.dn: len(witness_set("d", e, second)) for e in first}
        peak = max(counts.values(), default=0)
        expected = [e.dn for e in first if counts[e.dn] == peak]
        assert [e.dn for e in out.to_list()] == expected

    def test_zero_count_selección(self):
        """count($2) = 0 selects exactly the witness-less entries --
        something the plain operator cannot express."""
        _instance, (first, second) = random_sublists(9, size=80)
        pager = Pager(page_size=8, buffer_pages=6)
        agg = AggSelFilter(COUNT, "=", Constant(0))
        out = hierarchical_select(
            pager, "a", sorted_run(pager, first), sorted_run(pager, second), None, agg
        )
        expected = [e.dn for e in first if not witness_set("a", e, second)]
        assert [e.dn for e in out.to_list()] == expected


class TestSimpleAgg:
    def test_two_scan_io(self):
        instance, (subset,) = random_sublists(4, size=1500, lists=1)
        pager = Pager(page_size=16, buffer_pages=4)
        run = sorted_run(pager, subset)
        pager.flush()
        agg = AggSelFilter(
            EntryAggregate("min", "$1", "weight"),
            "=",
            EntrySetAggregate("min", EntryAggregate("min", "$1", "weight")),
        )
        before = pager.stats.snapshot()
        out = simple_agg_select(pager, run, agg)
        delta = pager.stats.since(before)
        # Theorem 6.1: at most two scans of the input plus the output write.
        assert delta.logical_reads <= 2 * run.page_count + 2
        # Correctness: global minimum holders.
        weights = [e.first("weight") for e in subset if e.has("weight")]
        if weights:
            minimum = min(weights)
            expected = [
                e.dn for e in subset
                if e.has("weight") and min(e.values("weight")) == minimum
            ]
            assert [e.dn for e in out.to_list()] == expected

    def test_single_scan_without_set_aggregates(self):
        _instance, (subset,) = random_sublists(6, size=800, lists=1)
        pager = Pager(page_size=16, buffer_pages=4)
        run = sorted_run(pager, subset)
        pager.flush()
        agg = AggSelFilter(EntryAggregate("count", "$1", "tag"), ">=", Constant(1))
        before = pager.stats.snapshot()
        out = simple_agg_select(pager, run, agg)
        assert pager.stats.since(before).logical_reads <= run.page_count + 1
        assert [e.dn for e in out.to_list()] == [e.dn for e in subset if e.has("tag")]

    def test_rejects_witness_filter(self):
        pager = Pager()
        run = sorted_run(pager, [])
        agg = AggSelFilter(COUNT, ">", Constant(0))
        with pytest.raises(ValueError):
            simple_agg_select(pager, run, agg)


class TestEmbeddedRef:
    @pytest.mark.parametrize("op", ["vd", "dv"])
    @pytest.mark.parametrize("seed", range(5))
    def test_plain(self, op, seed):
        _instance, (first, second) = random_sublists(seed + 20, size=110)
        pager = Pager(page_size=8, buffer_pages=8)
        out = embedded_ref_select(
            pager, op, sorted_run(pager, first), sorted_run(pager, second), "ref"
        )
        expected = []
        second_dns = {e.dn for e in second}
        refs_to = {}
        for witness in second:
            for value in witness.values("ref"):
                refs_to.setdefault(value, set()).add(witness.dn)
        for entry in first:
            if op == "vd":
                hit = any(v in second_dns for v in entry.values("ref"))
            else:
                hit = bool(refs_to.get(entry.dn))
            if hit:
                expected.append(entry.dn)
        assert [e.dn for e in out.to_list()] == expected

    def test_aggregate_max_references(self):
        """Figure 3's count($2)=max(count($2)) case via the general path."""
        _instance, (first, second) = random_sublists(31, size=130)
        pager = Pager(page_size=8, buffer_pages=8)
        agg = AggSelFilter(COUNT, "=", EntrySetAggregate("max", COUNT))
        out = embedded_ref_select(
            pager, "dv", sorted_run(pager, first), sorted_run(pager, second), "ref", agg
        )
        counts = {}
        for entry in first:
            counts[entry.dn] = sum(
                1 for w in second if entry.dn in w.values("ref")
            )
        peak = max(counts.values(), default=0)
        expected = [e.dn for e in first if counts[e.dn] == peak]
        assert [e.dn for e in out.to_list()] == expected

    def test_unknown_op(self):
        pager = Pager()
        run = sorted_run(pager, [])
        with pytest.raises(ValueError):
            embedded_ref_select(pager, "xx", run, run, "ref")


class TestSelection:
    def test_default_filter_is_positive_count(self):
        pager = Pager(page_size=4)
        _instance, (subset,) = random_sublists(2, size=30, lists=1)
        annotated = run_from_iterable(
            pager,
            [(e, (i % 3,)) for i, e in enumerate(subset)],
        )
        out = select_annotated(pager, annotated, [COUNT], None)
        expected = [e.dn for i, e in enumerate(subset) if i % 3 > 0]
        assert [e.dn for e in out.to_list()] == expected
