"""The literal figure transcriptions agree with the definitional
semantics (three-way with the generalised engine, tested elsewhere)."""

import pytest

from repro.engine.paper_figures import (
    compute_eragg_dv,
    compute_hsad,
    compute_hsadc,
    compute_hsagg_ad,
    compute_hspc,
)
from repro.query.semantics import witness_set

from .conftest import random_sublists


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("op", ["p", "c"])
def test_figure_2(op, seed):
    _instance, (first, second) = random_sublists(seed, size=90)
    got = [e.dn for e in compute_hspc(op, first, second)]
    expected = [e.dn for e in first if witness_set(op, e, second)]
    assert got == expected


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("op", ["a", "d"])
def test_figure_4(op, seed):
    _instance, (first, second) = random_sublists(seed + 50, size=90)
    got = [e.dn for e in compute_hsad(op, first, second)]
    expected = [e.dn for e in first if witness_set(op, e, second)]
    assert got == expected


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("op", ["ac", "dc"])
def test_figure_5(op, seed):
    _instance, subsets = random_sublists(seed + 100, size=90, lists=3)
    first, second, third = subsets
    got = [e.dn for e in compute_hsadc(op, first, second, third)]
    expected = [e.dn for e in first if witness_set(op, e, second, third)]
    assert got == expected


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("op", ["a", "d"])
def test_figure_6(op, seed):
    _instance, (first, second) = random_sublists(seed + 150, size=90)
    got = [e.dn for e in compute_hsagg_ad(op, first, second)]
    counts = [len(witness_set(op, e, second)) for e in first]
    peak = max(counts, default=0)
    expected = [e.dn for e, c in zip(first, counts) if c == peak]
    assert got == expected


@pytest.mark.parametrize("seed", range(6))
def test_figure_3(seed):
    _instance, (first, second) = random_sublists(seed + 200, size=90)
    got = [e.dn for e in compute_eragg_dv(first, second, "ref")]
    counts = []
    for entry in first:
        counts.append(sum(1 for w in second if entry.dn in w.values("ref")))
    peak = max(counts, default=0)
    expected = [e.dn for e, c in zip(first, counts) if c == peak]
    assert got == expected


def test_figure_2_wrong_op():
    with pytest.raises(ValueError):
        compute_hspc("a", [], [])
    with pytest.raises(ValueError):
        compute_hsad("p", [], [])
    with pytest.raises(ValueError):
        compute_hsadc("d", [], [], [])
    with pytest.raises(ValueError):
        compute_hsagg_ad("c", [], [])
