"""Unit tests for the shared operator machinery: labelled merge, spill
lists and term resolution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.common import (
    SpillList,
    add_witness,
    copy_states,
    fresh_states,
    labeled_merge,
    merge_states,
    witness_terms_of,
)
from repro.query.aggregates import AggSelFilter, Constant, EntryAggregate, EntrySetAggregate
from repro.storage.pager import Pager
from repro.storage.runs import RunWriter, run_from_iterable

from .conftest import random_sublists, sorted_run


class TestLabeledMerge:
    def test_labels_reflect_membership(self):
        _instance, (first, second) = random_sublists(3, size=60)
        pager = Pager(page_size=8, buffer_pages=6)
        runs = [sorted_run(pager, first), sorted_run(pager, second)]
        first_dns = {e.dn for e in first}
        second_dns = {e.dn for e in second}
        seen = set()
        previous_key = None
        for entry, label in labeled_merge(runs):
            assert (1 in label) == (entry.dn in first_dns)
            assert (2 in label) == (entry.dn in second_dns)
            assert entry.dn not in seen  # each dn exactly once
            seen.add(entry.dn)
            if previous_key is not None:
                assert previous_key < entry.dn.key()  # strictly increasing
            previous_key = entry.dn.key()
        assert seen == first_dns | second_dns

    def test_three_runs(self):
        _instance, subsets = random_sublists(4, size=40, lists=3)
        pager = Pager(page_size=8, buffer_pages=6)
        runs = [sorted_run(pager, s) for s in subsets]
        for entry, label in labeled_merge(runs):
            for index, subset in enumerate(subsets, start=1):
                assert ((index in label)
                        == (entry.dn in {e.dn for e in subset}))

    def test_empty_runs(self):
        pager = Pager()
        runs = [sorted_run(pager, []), sorted_run(pager, [])]
        assert list(labeled_merge(runs)) == []


class TestSpillList:
    @given(st.lists(st.lists(st.integers(0, 99), max_size=12), max_size=8),
           st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_concat_preserves_sequence(self, groups, page_size):
        pager = Pager(page_size=page_size, buffer_pages=4)
        combined = SpillList(pager)
        expected = []
        for group in groups:
            other = SpillList(pager)
            for value in group:
                other.append(value)
            expected.extend(group)
            combined.concat(other)
        assert len(combined) == len(expected)
        writer = RunWriter(pager)
        combined.flush_to(writer)
        assert writer.close().to_list() == expected

    def test_flush_empties(self):
        pager = Pager(page_size=4)
        spill = SpillList(pager)
        for value in range(10):
            spill.append(value)
        writer = RunWriter(pager)
        spill.flush_to(writer)
        assert len(spill) == 0
        writer2 = RunWriter(pager)
        spill.flush_to(writer2)
        assert writer2.close().to_list() == []

    def test_concat_empty_is_noop(self):
        pager = Pager(page_size=4)
        spill = SpillList(pager)
        spill.append(1)
        spill.concat(SpillList(pager))
        assert len(spill) == 1

    def test_prepend_order(self):
        pager = Pager(page_size=3)
        spill = SpillList(pager)
        for value in (3, 4, 5):
            spill.append(value)
        for value in (2, 1, 0):
            spill.prepend(value)
        writer = RunWriter(pager)
        spill.flush_to(writer)
        assert writer.close().to_list() == [0, 1, 2, 3, 4, 5]

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("append"), st.integers(0, 99)),
                st.tuples(st.just("prepend"), st.integers(0, 99)),
                st.tuples(st.just("concat"), st.lists(st.integers(0, 99), max_size=9)),
            ),
            max_size=25,
        ),
        st.integers(2, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_mixed_operations_match_list_model(self, operations, page_size):
        pager = Pager(page_size=page_size, buffer_pages=4)
        spill = SpillList(pager)
        model = []
        for op, payload in operations:
            if op == "append":
                spill.append(payload)
                model.append(payload)
            elif op == "prepend":
                spill.prepend(payload)
                model.insert(0, payload)
            else:
                other = SpillList(pager)
                for value in payload:
                    other.append(value)
                spill.concat(other)
                model.extend(payload)
            assert len(spill) == len(model)
        writer = RunWriter(pager)
        spill.flush_to(writer)
        assert writer.close().to_list() == model

    def test_chain_unwinding_writes_full_pages(self):
        """The E19 regression: prepend-then-adopt (the pop path on a chain)
        must not fragment -- total spill I/O stays ~2 transfers per B
        records."""
        page_size = 16
        pager = Pager(page_size=page_size, buffer_pages=4)
        records = 2_000
        pager.flush()
        before = pager.stats.snapshot()
        current = SpillList(pager)
        for value in range(records):  # deepest-first unwinding
            parent = SpillList(pager)
            parent.prepend(records - value)
            parent.concat(current)
            current = parent
        writer = RunWriter(pager)
        current.flush_to(writer)
        run = writer.close()
        assert run.to_list() == list(range(1, records + 1))
        delta = pager.stats.since(before)
        # Each record: once into a spill page, once out, once into the run.
        assert delta.logical_reads + delta.logical_writes <= 4 * records / page_size + 8


class TestWitnessTerms:
    def test_default_is_count(self):
        terms = witness_terms_of(None)
        assert terms == [EntryAggregate("count", "$2", None)]

    def test_collects_witness_terms_only(self):
        agg = AggSelFilter(
            EntryAggregate("sum", "$2", "weight"),
            ">",
            EntryAggregate("min", "$1", "weight"),
        )
        terms = witness_terms_of(agg)
        assert terms == [EntryAggregate("sum", "$2", "weight")]

    def test_deduplicates(self):
        term = EntryAggregate("count", "$2", None)
        agg = AggSelFilter(term, "=", EntrySetAggregate("max", term))
        assert witness_terms_of(agg) == [term]

    def test_constant_sides(self):
        agg = AggSelFilter(Constant(1), "<", Constant(2))
        assert witness_terms_of(agg) == []


class TestStateHelpers:
    def test_add_and_merge(self):
        from repro.model.dn import DN
        from repro.model.entry import Entry

        terms = [
            EntryAggregate("count", "$2", None),
            EntryAggregate("sum", "$2", "weight"),
        ]
        witness = Entry(DN.parse("cn=w"), ["c"], {"weight": [3, 4]})
        states = fresh_states(terms)
        add_witness(states, terms, witness)
        assert states[0].result() == 1
        assert states[1].result() == 7
        clone = copy_states(states)
        add_witness(clone, terms, witness)
        assert states[0].result() == 1  # copy is independent
        merge_states(states, clone)
        assert states[0].result() == 3
        assert states[1].result() == 21
