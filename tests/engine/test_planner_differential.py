"""Randomized differential suite: the planned engine must be
bit-identical to the paper-literal engine on every seeded query tree --
across rewrites, cost-based reorderings, ACL refiltering and cache hits,
sequentially and under the parallel worker pool.

CI runs this module repeatedly (``pytest-repeat``) in the
planner-differential job; locally each seed runs once.
"""

import pytest

from repro.engine import QueryEngine
from repro.engine.optimizer import PlannedEngine
from repro.exec import WorkerPool
from repro.security import AccessControlList
from repro.server import DirectoryService
from repro.storage.store import DirectoryStore
from repro.workload import RandomQueries, random_instance

QUERIES_PER_SEED = 8


def make_store(seed, size=120):
    instance = random_instance(seed, size=size)
    store = DirectoryStore.from_instance(instance, page_size=8, buffer_pages=6)
    store.build_indices(
        int_attributes=("weight", "level"),
        string_attributes=("kind", "name", "tag"),
    )
    return instance, store


@pytest.mark.parametrize("seed", range(10))
def test_planned_bit_identical_sequential(seed):
    instance, store = make_store(seed)
    reference = QueryEngine(store)
    planned = PlannedEngine(store)
    queries = RandomQueries(instance, seed=seed * 13 + 1)
    for _ in range(QUERIES_PER_SEED):
        query = queries.any_level(depth=2)
        assert planned.run(query).dns() == reference.run(query).dns(), str(query)


@pytest.mark.parametrize("seed", range(6))
def test_planned_bit_identical_under_worker_pool(seed):
    instance, store = make_store(seed)
    queries = RandomQueries(instance, seed=seed * 17 + 5)
    trees = [queries.any_level(depth=2) for _ in range(QUERIES_PER_SEED)]
    reference = QueryEngine(store)
    expected = [reference.run(query).dns() for query in trees]
    with WorkerPool(4) as pool:
        planned = PlannedEngine(store, pool=pool)
        for query, want in zip(trees, expected):
            assert planned.run(query).dns() == want, str(query)


@pytest.mark.parametrize("seed", range(5))
def test_planned_service_matches_literal_service(seed):
    # End to end through DirectoryService: ACL refiltering and semantic
    # cache hits included (every query runs twice; the repeat is served
    # from cache on both services).
    instance = random_instance(seed, size=90)
    dns = [str(entry.dn) for entry in instance]
    acl = AccessControlList(default_allow=False)
    acl.allow("*", dns[0])  # one root subtree visible, the rest denied
    planned = DirectoryService(instance, acl=acl, page_size=8, planner="cost")
    literal = DirectoryService(instance, acl=acl, page_size=8, planner="none")
    queries = RandomQueries(instance, seed=seed * 19 + 7)
    try:
        for _ in range(QUERIES_PER_SEED):
            query = queries.any_level(depth=2)
            for _repeat in range(2):
                got = planned.search(query)
                want = literal.search(query)
                assert got.code == want.code, str(query)
                assert got.dns() == want.dns(), str(query)
    finally:
        planned.close()
        literal.close()


@pytest.mark.parametrize("seed", range(5))
def test_planned_service_identical_after_updates(seed):
    # Mutations in between: live statistics, cache invalidation and
    # compaction must never make the planned results drift.
    instance = random_instance(seed, size=90)
    planned = DirectoryService(instance, page_size=8, planner="cost")
    literal = DirectoryService(instance, page_size=8, planner="none")
    queries = RandomQueries(instance, seed=seed * 23 + 3)
    try:
        for round_no in range(3):
            dn = "name=diff%d, name=e0" % round_no
            for service in (planned, literal):
                service.add(
                    dn, ["node"],
                    {"name": ["diff%d" % round_no], "kind": ["alpha"],
                     "level": [round_no], "weight": [round_no * 10]},
                )
            for _ in range(QUERIES_PER_SEED // 2):
                query = queries.any_level(depth=2)
                assert planned.search(query).dns() == literal.search(query).dns(), (
                    str(query)
                )
            for service in (planned, literal):
                service.delete(dn)
    finally:
        planned.close()
        literal.close()
