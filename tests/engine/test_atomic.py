"""Atomic query evaluation: scan vs index paths, scope discipline, I/O."""

import pytest

from repro.engine.atomic import evaluate_atomic, scope_admits
from repro.model.dn import DN, ROOT_DN
from repro.query.ast import AtomicQuery, Scope
from repro.query.parser import parse_query
from repro.query.semantics import atomic_matches
from repro.storage.store import DirectoryStore
from repro.workload import RandomQueries, balanced_instance, random_instance


@pytest.fixture(scope="module")
def stores():
    instance = random_instance(13, size=160)
    plain = DirectoryStore.from_instance(instance, page_size=8, buffer_pages=6)
    indexed = DirectoryStore.from_instance(instance, page_size=8, buffer_pages=6)
    indexed.build_indices(
        int_attributes=("weight", "level"),
        string_attributes=("kind", "tag", "name"),
    )
    return instance, plain, indexed


class TestScopeAdmits:
    def test_base(self):
        base = DN.parse("dc=att, dc=com")
        assert scope_admits(base, Scope.BASE, base)
        assert not scope_admits(base, Scope.BASE, base.child("x=1"))

    def test_one_includes_base_and_children(self):
        base = DN.parse("dc=com")
        assert scope_admits(base, Scope.ONE, base)
        assert scope_admits(base, Scope.ONE, base.child("a=1"))
        assert not scope_admits(base, Scope.ONE, base.child("a=1").child("b=2"))

    def test_sub(self):
        base = DN.parse("dc=com")
        assert scope_admits(base, Scope.SUB, base.child("a=1").child("b=2"))
        assert not scope_admits(base, Scope.SUB, DN.parse("dc=org"))


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_scan_matches_definition(self, stores, seed):
        instance, plain, _indexed = stores
        queries = RandomQueries(instance, seed=seed)
        query = queries.atomic()
        run = evaluate_atomic(plain, query, use_indices=False)
        expected = [
            e.dn for e in instance if atomic_matches(query, e, instance)
        ]
        assert [e.dn for e in run.to_list()] == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_index_path_matches_scan_path(self, stores, seed):
        instance, plain, indexed = stores
        queries = RandomQueries(instance, seed=seed + 100)
        query = queries.atomic()
        scan = evaluate_atomic(plain, query, use_indices=False)
        via_index = evaluate_atomic(indexed, query, use_indices=True)
        assert [e.dn for e in scan.to_list()] == [e.dn for e in via_index.to_list()]

    def test_comparison_via_btree(self, stores):
        instance, _plain, indexed = stores
        query = parse_query("( ? sub ? weight<10)")
        run = evaluate_atomic(indexed, query, use_indices=True)
        expected = [e.dn for e in instance if any(
            isinstance(v, int) and v < 10 for v in e.values("weight"))]
        assert [e.dn for e in run.to_list()] == expected


class TestIOShape:
    def test_base_scope_reads_one_locality(self):
        instance = balanced_instance(4000, fanout=4)
        store = DirectoryStore.from_instance(instance, page_size=8, buffer_pages=2)
        store.pager.flush()
        some = list(instance)[1234]
        query = AtomicQuery(some.dn, Scope.BASE, parse_query("( ? base ? objectClass=*)").filter)
        before = store.pager.stats.snapshot()
        run = evaluate_atomic(store, query, use_indices=False)
        assert len(run) == 1
        assert store.pager.stats.since(before).logical_reads <= 3

    def test_sub_scope_reads_only_subtree_range(self):
        instance = balanced_instance(4000, fanout=4)
        store = DirectoryStore.from_instance(instance, page_size=8, buffer_pages=2)
        store.pager.flush()
        deep = [e for e in instance if e.dn.depth() == 4][0]
        subtree = len(list(instance.subtree(deep.dn)))
        query = AtomicQuery(deep.dn, Scope.SUB, parse_query("( ? base ? objectClass=*)").filter)
        before = store.pager.stats.snapshot()
        run = evaluate_atomic(store, query, use_indices=False)
        assert len(run) == subtree
        delta = store.pager.stats.since(before)
        assert delta.logical_reads < store.page_count / 3
