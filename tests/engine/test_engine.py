"""End-to-end engine tests: the external-memory evaluator is differentially
checked against the definitional semantics at every language level, and the
structural claims of Section 8.2 (pipelined sorted outputs, constant
memory, index-independence) are verified."""

import pytest

from repro.engine import QueryEngine
from repro.query.ast import language_level
from repro.query.semantics import evaluate
from repro.workload import RandomQueries, random_instance


def reference(query, instance):
    return [str(e.dn) for e in evaluate(query, instance)]


@pytest.mark.parametrize("seed", range(12))
def test_differential_all_levels(seed):
    instance = random_instance(seed, size=70)
    engine = QueryEngine.from_instance(instance, page_size=8, buffer_pages=6)
    queries = RandomQueries(instance, seed=seed * 13 + 5)
    for _ in range(10):
        query = queries.any_level()
        assert engine.run(query).dns() == reference(query, instance), str(query)


@pytest.mark.parametrize("seed", range(4))
def test_differential_deep_queries(seed):
    instance = random_instance(seed + 60, size=120, max_children=3)
    engine = QueryEngine.from_instance(instance, page_size=4, buffer_pages=4)
    queries = RandomQueries(instance, seed=seed)
    for _ in range(5):
        query = queries.any_level(depth=3)
        assert engine.run(query).dns() == reference(query, instance), str(query)


def test_differential_with_tiny_buffer_pool():
    """Theorem 8.3's constant-memory claim: a 2-page pool still answers
    every query correctly (just with more physical I/O)."""
    instance = random_instance(77, size=150)
    engine = QueryEngine.from_instance(instance, page_size=4, buffer_pages=2)
    queries = RandomQueries(instance, seed=3)
    for _ in range(12):
        query = queries.any_level()
        assert engine.run(query).dns() == reference(query, instance), str(query)


def test_indices_do_not_change_results():
    instance = random_instance(21, size=100)
    plain = QueryEngine.from_instance(instance, page_size=8)
    indexed = QueryEngine.from_instance(
        instance,
        page_size=8,
        int_indices=("weight", "level"),
        string_indices=("kind", "tag", "name"),
    )
    queries = RandomQueries(instance, seed=9)
    for _ in range(15):
        query = queries.any_level()
        assert plain.run(query).dns() == indexed.run(query).dns(), str(query)


def test_query_accepts_text():
    instance = random_instance(1, size=30)
    engine = QueryEngine.from_instance(instance)
    result = engine.run("( ? sub ? objectClass=node)")
    assert len(result) == sum(1 for e in instance if "node" in e.classes)


def test_results_always_sorted():
    instance = random_instance(5, size=90)
    engine = QueryEngine.from_instance(instance, page_size=8)
    queries = RandomQueries(instance, seed=17)
    for _ in range(10):
        result = engine.run(queries.any_level())
        keys = [e.dn.key() for e in result]
        assert keys == sorted(keys)


def test_intermediate_runs_freed():
    """After a deep query the pager holds only the master + index pages --
    no leaked intermediates."""
    instance = random_instance(8, size=80)
    engine = QueryEngine.from_instance(instance, page_size=8)
    resident_before = engine.pager.stats.allocated
    queries = RandomQueries(instance, seed=2)
    for _ in range(10):
        engine.run(queries.any_level(depth=2))
    # Allocation grows (runs are written) but freed pages don't accumulate
    # as live disk pages.
    assert engine.pager.pages_on_disk <= engine.store.page_count + engine.pager.buffer_pages + 4


def test_io_reported_per_query():
    instance = random_instance(4, size=400)
    engine = QueryEngine.from_instance(instance, page_size=8, buffer_pages=2)
    result = engine.run("( ? sub ? kind=alpha)")
    assert result.io.logical_reads > 0
    assert result.elapsed >= 0


@pytest.mark.parametrize("level_method", ["l0", "l1", "l2", "l3"])
def test_language_levels_exercised(level_method):
    instance = random_instance(3, size=60)
    queries = RandomQueries(instance, seed=1)
    query = getattr(queries, level_method)()
    ceiling = int(level_method[1])
    assert language_level(query) <= ceiling
