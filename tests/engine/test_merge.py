"""Boolean operators on sorted runs (Section 4.2)."""

import pytest

from repro.engine.merge import boolean_merge
from repro.storage.pager import Pager

from .conftest import random_sublists, sorted_run


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("op", ["and", "or", "diff"])
def test_matches_set_semantics(seed, op):
    _instance, (left, right) = random_sublists(seed, size=80)
    pager = Pager(page_size=8, buffer_pages=6)
    result = boolean_merge(pager, op, sorted_run(pager, left), sorted_run(pager, right))
    left_dns = {e.dn for e in left}
    right_dns = {e.dn for e in right}
    if op == "and":
        expected = left_dns & right_dns
    elif op == "or":
        expected = left_dns | right_dns
    else:
        expected = left_dns - right_dns
    got = [e.dn for e in result.to_list()]
    assert set(got) == expected
    assert got == sorted(got, key=lambda dn: dn.key())  # output stays sorted
    assert len(got) == len(set(got))  # no duplicates


def test_empty_operands():
    pager = Pager()
    empty = sorted_run(pager, [])
    also_empty = sorted_run(pager, [])
    for op in ("and", "or", "diff"):
        assert boolean_merge(pager, op, empty, also_empty).to_list() == []


def test_unknown_op():
    pager = Pager()
    run = sorted_run(pager, [])
    with pytest.raises(ValueError):
        boolean_merge(pager, "xor", run, run)


def test_linear_io():
    """One co-scan: I/O proportional to |L1|/B + |L2|/B + |out|/B."""
    _instance, (left, right) = random_sublists(3, size=2000)
    pager = Pager(page_size=16, buffer_pages=4)
    left_run = sorted_run(pager, left)
    right_run = sorted_run(pager, right)
    pager.flush()
    before = pager.stats.snapshot()
    result = boolean_merge(pager, "or", left_run, right_run)
    delta = pager.stats.since(before)
    input_pages = left_run.page_count + right_run.page_count
    assert delta.logical_reads <= input_pages + 2
    assert delta.logical_writes <= result.page_count + 2
