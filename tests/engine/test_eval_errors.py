"""Surfaced evaluation errors: unparseable embedded references and
filter coercion failures used to be swallowed by bare ``except`` blocks
and silently shrink the answer.  Now they are *counted* -- on the Run,
the QueryResult, EXPLAIN ``--analyze`` output and the
``repro_filter_eval_errors_total`` metric -- while the answer itself
still contains every entry that can be evaluated."""

import pytest

from repro.engine import QueryEngine
from repro.engine.eragg import embedded_ref_select
from repro.engine.optimizer import explain
from repro.filters.ast import Equality
from repro.model.dn import DN
from repro.model.entry import Entry
from repro.model.instance import DirectoryInstance
from repro.model.schema import DirectorySchema
from repro.obs.metrics import use_registry
from repro.query.parser import parse_query
from repro.storage.store import DirectoryStore

from .conftest import sorted_run

BAD_REF = "not a dn !!"


def _entry(name, refs=()):
    return Entry(
        DN.parse("name=%s, dc=com" % name), ["node"], {"ref": list(refs)}
    )


class TestEmbeddedRefSkipCounting:
    """The operator counts every unparseable reference it had to skip."""

    @pytest.mark.parametrize("op", ["vd", "dv"])
    def test_bad_values_are_counted_not_fatal(self, op, pager):
        first = [
            _entry("a", [BAD_REF, "name=w, dc=com"]),
            _entry("b", ["name=w, dc=com"]),
        ]
        second = [_entry("w", [BAD_REF, "name=b, dc=com"])]
        out = embedded_ref_select(
            pager, op, sorted_run(pager, first), sorted_run(pager, second), "ref"
        )
        try:
            # vd scans first's refs (one bad value); dv scans second's
            # refs (also one bad value).  Either way the answer keeps the
            # entries whose *good* references match.
            assert out.eval_errors == 1
            dns = [e.dn for e in out.to_list()]
            if op == "vd":
                assert dns == [e.dn for e in first]
            else:
                assert dns == [first[1].dn]
        finally:
            out.free()

    def test_clean_references_count_zero(self, pager):
        first = [_entry("a", ["name=w, dc=com"])]
        second = [_entry("w")]
        out = embedded_ref_select(
            pager, "vd", sorted_run(pager, first), sorted_run(pager, second), "ref"
        )
        try:
            assert out.eval_errors == 0
        finally:
            out.free()


@pytest.fixture
def ref_instance():
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("cn", "string")
    schema.add_attribute("ref", "string")  # string: garbage is storable
    schema.add_class("dcObject", {"dc"})
    schema.add_class("person", {"cn", "ref"})
    instance = DirectoryInstance(schema)
    instance.add("dc=com", ["dcObject"], dc="com")
    instance.add("cn=target, dc=com", ["person"], cn="target")
    instance.add(
        "cn=good, dc=com", ["person"], cn="good", ref="cn=target, dc=com"
    )
    instance.add("cn=bad, dc=com", ["person"], cn="bad", ref=BAD_REF)
    return instance


ER_QUERY = "(vd ( ? sub ? cn=*) ( ? sub ? cn=target) ref)"


class TestQueryResultSurface:
    """The counts ride up to the user-facing result and EXPLAIN."""

    def test_engine_run_reports_eval_errors(self, ref_instance):
        engine = QueryEngine.from_instance(ref_instance, page_size=8)
        result = engine.run(ER_QUERY)
        assert result.eval_errors == 1
        assert [str(e.dn) for e in result] == ["cn=good, dc=com"]

    def test_explain_analyze_shows_eval_errors(self, ref_instance):
        store = DirectoryStore.from_instance(
            ref_instance, page_size=8, buffer_pages=8
        )
        node = explain(store, parse_query(ER_QUERY), analyze=True)
        assert "eval_errors=1" in node.render()

        def total(tree):
            return tree.get("eval_errors", 0) + sum(
                total(child) for child in tree["children"]
            )

        assert total(node.as_dict()) == 1


class TestFilterCoercionCounter:
    """Absorbed coercion failures increment the labelled metric."""

    def test_dn_coercion_failure_is_counted(self):
        bearer = Entry(
            DN.parse("cn=x, dc=com"), ["node"], {"ref": [DN.parse("cn=y, dc=com")]}
        )
        with use_registry() as registry:
            assert not Equality("ref", BAD_REF).matches(bearer)
            counter = registry.get("repro_filter_eval_errors_total")
            assert counter.value(kind="dn-coerce") == 1

    def test_int_coercion_failure_is_counted(self):
        bearer = Entry(DN.parse("cn=x, dc=com"), ["node"], {"n": [5]})
        with use_registry() as registry:
            assert not Equality("n", "abc").matches(bearer)
            counter = registry.get("repro_filter_eval_errors_total")
            assert counter.value(kind="int-coerce") == 1

    def test_successful_comparisons_count_nothing(self):
        bearer = Entry(
            DN.parse("cn=x, dc=com"),
            ["node"],
            {"ref": [DN.parse("cn=y, dc=com")], "n": [5]},
        )
        with use_registry() as registry:
            assert Equality("ref", "cn=y, dc=com").matches(bearer)
            assert Equality("n", "5").matches(bearer)
            assert registry.get("repro_filter_eval_errors_total") is None
