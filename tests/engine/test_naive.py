"""Naive quadratic baselines: correct, but visibly superlinear in I/O."""

import pytest

from repro.engine.hsagg import hierarchical_select
from repro.engine.naive import naive_embedded_ref_select, naive_hierarchical_select
from repro.query.semantics import witness_set
from repro.storage.pager import Pager

from .conftest import random_sublists, sorted_run


@pytest.mark.parametrize("op", ["p", "c", "a", "d"])
def test_naive_hierarchical_correct(op):
    _instance, (first, second) = random_sublists(40, size=70)
    pager = Pager(page_size=8, buffer_pages=4)
    out = naive_hierarchical_select(
        pager, op, sorted_run(pager, first), sorted_run(pager, second)
    )
    expected = [e.dn for e in first if witness_set(op, e, second)]
    assert [e.dn for e in out.to_list()] == expected


@pytest.mark.parametrize("op", ["ac", "dc"])
def test_naive_path_constrained_correct(op):
    _instance, subsets = random_sublists(41, size=70, lists=3)
    pager = Pager(page_size=8, buffer_pages=4)
    runs = [sorted_run(pager, s) for s in subsets]
    out = naive_hierarchical_select(pager, op, runs[0], runs[1], runs[2])
    expected = [e.dn for e in subsets[0] if witness_set(op, e, subsets[1], subsets[2])]
    assert [e.dn for e in out.to_list()] == expected


@pytest.mark.parametrize("op", ["vd", "dv"])
def test_naive_embedded_correct(op):
    _instance, (first, second) = random_sublists(42, size=70)
    pager = Pager(page_size=8, buffer_pages=4)
    out = naive_embedded_ref_select(
        pager, op, sorted_run(pager, first), sorted_run(pager, second), "ref"
    )
    second_dns = {e.dn for e in second}
    expected = []
    for entry in first:
        if op == "vd":
            hit = any(v in second_dns for v in entry.values("ref"))
        else:
            hit = any(entry.dn in w.values("ref") for w in second)
        if hit:
            expected.append(entry.dn)
    assert [e.dn for e in out.to_list()] == expected


def test_naive_io_superlinear_vs_stack_linear():
    """The Section 5.3 motivation, measured: quadruple the input and the
    naive I/O grows ~16x while the stack algorithm grows ~4x."""
    def costs(n):
        _instance, (first, second) = random_sublists(50, size=n)
        pager = Pager(page_size=16, buffer_pages=4)
        first_run = sorted_run(pager, first)
        second_run = sorted_run(pager, second)
        pager.flush()
        before = pager.stats.snapshot()
        naive_hierarchical_select(pager, "a", first_run, second_run)
        naive_cost = pager.stats.since(before).logical_reads
        before = pager.stats.snapshot()
        hierarchical_select(pager, "a", first_run, second_run)
        stack_cost = pager.stats.since(before).logical_reads
        return naive_cost, stack_cost

    naive_small, stack_small = costs(400)
    naive_big, stack_big = costs(1600)
    assert naive_big > 8 * naive_small        # quadratic-ish growth
    assert stack_big < 8 * stack_small        # linear-ish growth
    assert naive_big > 10 * stack_big         # and the gap is wide
