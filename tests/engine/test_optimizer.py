"""Rewrites, access-path planning, EXPLAIN and the planned engine."""

import pytest

from repro.engine import QueryEngine
from repro.engine.optimizer import AccessPlanner, PlannedEngine, explain, rewrite
from repro.query.ast import And, AtomicQuery, HierarchySelect
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.storage.store import DirectoryStore
from repro.workload import RandomQueries, balanced_instance, random_instance


@pytest.fixture(scope="module")
def store():
    instance = balanced_instance(2000, fanout=4, seed=3)
    s = DirectoryStore.from_instance(instance, page_size=16, buffer_pages=8)
    s.build_indices(
        int_attributes=("weight",), string_attributes=("name", "kind")
    )
    return instance, s


class TestRewrites:
    def test_r1_ac_to_p(self):
        query = parse_query(
            "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? objectClass=*))"
        )
        rewritten, rules = rewrite(query)
        assert isinstance(rewritten, HierarchySelect) and rewritten.op == "p"
        assert rewritten.third is None
        assert any("R1" in rule for rule in rules)

    def test_r1_dc_to_c(self):
        query = parse_query(
            "(dc ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? objectClass=*))"
        )
        rewritten, _rules = rewrite(query)
        assert rewritten.op == "c"

    def test_r1_preserves_agg_filter(self):
        query = parse_query(
            "(dc ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? objectClass=*)"
            " count($2) > 3)"
        )
        rewritten, _rules = rewrite(query)
        assert rewritten.op == "c"
        assert rewritten.agg is not None

    def test_r1_not_applied_to_real_blockers(self):
        query = parse_query(
            "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? kind=gamma))"
        )
        rewritten, rules = rewrite(query)
        assert rewritten.op == "ac"
        assert rules == []

    def test_r2_idempotence(self):
        query = parse_query("(& ( ? sub ? kind=alpha) ( ? sub ? kind=alpha))")
        rewritten, rules = rewrite(query)
        assert isinstance(rewritten, AtomicQuery)
        # Exact duplicates collapse in normalisation (R0); R2 remains for
        # duplicates that only appear after deeper rewrites.
        assert any("R0" in rule or "R2" in rule for rule in rules)

    def test_r3_scope_tightening(self):
        query = parse_query(
            "(& ( ? sub ? kind=alpha) (name=e1, name=e0 ? sub ? weight<50))"
        )
        rewritten, rules = rewrite(query)
        assert any("R3" in rule for rule in rules)
        assert isinstance(rewritten, And)
        assert str(rewritten.left.base) == "name=e1, name=e0"

    def test_r3_not_applied_across_unrelated_bases(self):
        query = parse_query(
            "(& (name=e1, name=e0 ? sub ? kind=alpha)"
            "   (name=e2, name=e0 ? sub ? weight<50))"
        )
        _rewritten, rules = rewrite(query)
        assert not any("R3" in rule for rule in rules)

    @pytest.mark.parametrize("seed", range(8))
    def test_rewrites_preserve_semantics(self, seed):
        instance = random_instance(seed, size=80)
        queries = RandomQueries(instance, seed=seed + 3)
        for _ in range(8):
            query = queries.any_level(depth=2)
            rewritten, _rules = rewrite(query)
            assert [e.dn for e in evaluate(rewritten, instance)] == [
                e.dn for e in evaluate(query, instance)
            ], str(query)


class TestAccessPlanner:
    def test_selective_equality_uses_index(self, store):
        _instance, s = store
        planner = AccessPlanner(s)
        use_index, label, _est = planner.plan_leaf(
            parse_query("( ? sub ? name=e17)")
        )
        assert use_index
        assert "strindex" in label

    def test_unselective_filter_scans(self, store):
        _instance, s = store
        planner = AccessPlanner(s)
        use_index, label, _est = planner.plan_leaf(
            parse_query("( ? sub ? kind=alpha)")
        )
        # ~25% of entries match: fetching one page per match is worse than
        # the clustered scan.
        assert not use_index
        assert "scan" in label

    def test_unindexed_attribute_scans(self, store):
        _instance, s = store
        planner = AccessPlanner(s)
        use_index, _label, _est = planner.plan_leaf(
            parse_query("( ? sub ? level<3)")
        )
        assert not use_index


class TestPlannedEngine:
    @pytest.mark.parametrize("seed", range(6))
    def test_differential(self, store, seed):
        instance, s = store
        engine = PlannedEngine(s)
        queries = RandomQueries(instance, seed=seed + 11)
        for _ in range(6):
            query = queries.any_level()
            assert engine.run(query).dns() == [
                str(e.dn) for e in evaluate(query, instance)
            ], str(query)

    def test_r1_rewrite_saves_io(self, store):
        _instance, s = store
        planned = PlannedEngine(s)
        unplanned = QueryEngine(s, use_indices=False)
        query = (
            "(ac ( ? sub ? name=e5) ( ? sub ? name=e1) ( ? sub ? objectClass=*))"
        )
        planned_result = planned.run(query)
        unplanned_result = unplanned.run(query)
        assert planned_result.dns() == unplanned_result.dns()
        assert any("R1" in rule for rule in planned.last_rewrites)
        planned_cost = planned_result.io.logical_reads + planned_result.io.logical_writes
        unplanned_cost = (
            unplanned_result.io.logical_reads + unplanned_result.io.logical_writes
        )
        assert planned_cost * 5 < unplanned_cost


class TestExplain:
    def test_tree_shape_and_estimates(self, store):
        _instance, s = store
        node = explain(
            s,
            parse_query(
                "(c ( ? sub ? kind=alpha) ( ? sub ? weight<50) count($2) > 1)"
            ),
        )
        text = str(node)
        assert "hierarchy c +agg" in text
        assert "atomic" in text
        assert "est=" in text

    def test_analyze_adds_actuals(self, store):
        instance, s = store
        query = parse_query("( ? sub ? kind=alpha)")
        node = explain(s, query, analyze=True)
        actual = len(evaluate(query, instance))
        assert node.actual == actual
        assert "actual=%d" % actual in str(node)

    def test_rewrites_reported(self, store):
        _instance, s = store
        node = explain(
            s,
            parse_query(
                "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta)"
                " ( ? sub ? objectClass=*))"
            ),
        )
        assert "R1" in str(node)
