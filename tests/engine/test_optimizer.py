"""Rewrites, access-path planning, EXPLAIN and the planned engine."""

import pytest

from repro.engine import QueryEngine
from repro.engine.optimizer import (
    QERROR_ALERT,
    AccessPlanner,
    PlannedEngine,
    estimate_cardinality,
    explain,
    qerror,
    reorder_operands,
    rewrite,
    route_hints,
)
from repro.filters.ast import Presence
from repro.model.dn import DN
from repro.query.ast import And, AtomicQuery, Diff, HierarchySelect, Or, Scope
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.storage.store import DirectoryStore
from repro.workload import RandomQueries, balanced_instance, random_instance


@pytest.fixture(scope="module")
def store():
    instance = balanced_instance(2000, fanout=4, seed=3)
    s = DirectoryStore.from_instance(instance, page_size=16, buffer_pages=8)
    s.build_indices(
        int_attributes=("weight",), string_attributes=("name", "kind")
    )
    return instance, s


class TestRewrites:
    def test_r1_ac_to_p(self):
        query = parse_query(
            "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? objectClass=*))"
        )
        rewritten, rules = rewrite(query)
        assert isinstance(rewritten, HierarchySelect) and rewritten.op == "p"
        assert rewritten.third is None
        assert any("R1" in rule for rule in rules)

    def test_r1_dc_to_c(self):
        query = parse_query(
            "(dc ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? objectClass=*))"
        )
        rewritten, _rules = rewrite(query)
        assert rewritten.op == "c"

    def test_r1_preserves_agg_filter(self):
        query = parse_query(
            "(dc ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? objectClass=*)"
            " count($2) > 3)"
        )
        rewritten, _rules = rewrite(query)
        assert rewritten.op == "c"
        assert rewritten.agg is not None

    def test_r1_not_applied_to_real_blockers(self):
        query = parse_query(
            "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? kind=gamma))"
        )
        rewritten, rules = rewrite(query)
        assert rewritten.op == "ac"
        assert rules == []

    def test_r2_idempotence(self):
        query = parse_query("(& ( ? sub ? kind=alpha) ( ? sub ? kind=alpha))")
        rewritten, rules = rewrite(query)
        assert isinstance(rewritten, AtomicQuery)
        # Exact duplicates collapse in normalisation (R0); R2 remains for
        # duplicates that only appear after deeper rewrites.
        assert any("R0" in rule or "R2" in rule for rule in rules)

    def test_r3_scope_tightening(self):
        query = parse_query(
            "(& ( ? sub ? kind=alpha) (name=e1, name=e0 ? sub ? weight<50))"
        )
        rewritten, rules = rewrite(query)
        assert any("R3" in rule for rule in rules)
        assert isinstance(rewritten, And)
        assert str(rewritten.left.base) == "name=e1, name=e0"

    def test_r3_not_applied_across_unrelated_bases(self):
        query = parse_query(
            "(& (name=e1, name=e0 ? sub ? kind=alpha)"
            "   (name=e2, name=e0 ? sub ? weight<50))"
        )
        _rewritten, rules = rewrite(query)
        assert not any("R3" in rule for rule in rules)

    @pytest.mark.parametrize("seed", range(8))
    def test_rewrites_preserve_semantics(self, seed):
        instance = random_instance(seed, size=80)
        queries = RandomQueries(instance, seed=seed + 3)
        for _ in range(8):
            query = queries.any_level(depth=2)
            rewritten, _rules = rewrite(query)
            assert [e.dn for e in evaluate(rewritten, instance)] == [
                e.dn for e in evaluate(query, instance)
            ], str(query)


class TestR1WholeInstanceRegression:
    """ISSUE 9 bugfix: the paper-literal third operand can reach the
    optimiser as ``Presence("objectClass")`` (builders, the LDAP
    translation layer, any non-canonical spelling route) and pre-fix
    ``_is_whole_instance`` only accepted ``MatchAll`` -- so the Section
    8.1 rewrite never fired on it."""

    SECTION_8_1 = (
        "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? objectClass=*))"
    )

    def test_literal_section_8_1_string(self):
        rewritten, rules = rewrite(parse_query(self.SECTION_8_1))
        assert rewritten.op == "p" and rewritten.third is None
        assert any("R1" in rule for rule in rules)

    def test_presence_object_class_third_operand(self):
        # The pre-fix miss: an AST-level Presence("objectClass") whole
        # instance (always true by Definition 3.2 (c2)).
        base = parse_query(self.SECTION_8_1)
        query = HierarchySelect(
            "ac",
            base.first,
            base.second,
            AtomicQuery(DN.parse(""), Scope.SUB, Presence("objectClass")),
            None,
        )
        rewritten, rules = rewrite(query)
        assert rewritten.op == "p" and rewritten.third is None
        assert any("R1" in rule for rule in rules)

    def test_lowercase_presence_is_not_whole_instance(self):
        # Presence tests are case-sensitive: objectclass=* names a
        # different (absent) attribute and matches nothing -- rewriting
        # it away would change results.
        query = parse_query(
            "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? objectclass=*))"
        )
        assert isinstance(query.third.filter, Presence)
        rewritten, rules = rewrite(query)
        assert rewritten.op == "ac"
        assert not any("R1" in rule for rule in rules)

    def test_presence_rewrite_preserves_semantics(self):
        instance = random_instance(5, size=80)
        base = parse_query(self.SECTION_8_1)
        query = HierarchySelect(
            "dc",
            base.first,
            base.second,
            AtomicQuery(DN.parse(""), Scope.SUB, Presence("objectClass")),
            None,
        )
        rewritten, _rules = rewrite(query)
        assert rewritten.op == "c"
        assert [e.dn for e in evaluate(rewritten, instance)] == [
            e.dn for e in evaluate(query, instance)
        ]


class TestNewRewrites:
    def test_r4_and_absorbs_whole_instance_cover(self):
        query = parse_query(
            "(& ( ? sub ? objectClass=*) (name=e1, name=e0 ? sub ? kind=alpha))"
        )
        rewritten, rules = rewrite(query)
        assert isinstance(rewritten, AtomicQuery)
        assert str(rewritten.base) == "name=e1, name=e0"
        assert any("R4" in rule for rule in rules)

    def test_r4_or_collapses_to_cover(self):
        query = parse_query(
            "(| ( ? sub ? objectClass=*) (name=e1, name=e0 ? sub ? kind=alpha))"
        )
        rewritten, rules = rewrite(query)
        assert isinstance(rewritten, AtomicQuery)
        assert rewritten.base.is_null()
        assert any("R4" in rule for rule in rules)

    def test_r4_not_applied_when_footprint_escapes(self):
        # The cover's subtree does not contain the other operand.
        query = parse_query(
            "(& (name=e1, name=e0 ? sub ? objectClass=*) ( ? sub ? kind=alpha))"
        )
        _rewritten, rules = rewrite(query)
        assert not any("R4" in rule for rule in rules)

    def test_r5_tightens_diff_right_operand(self):
        query = parse_query(
            "(- (name=e1, name=e0 ? sub ? kind=alpha) ( ? sub ? kind=beta))"
        )
        rewritten, rules = rewrite(query)
        assert isinstance(rewritten, Diff)
        assert str(rewritten.right.base) == "name=e1, name=e0"
        assert any("R5" in rule for rule in rules)

    def test_r5_never_touches_left_operand(self):
        query = parse_query(
            "(- ( ? sub ? kind=beta) (name=e1, name=e0 ? sub ? kind=alpha))"
        )
        rewritten, rules = rewrite(query)
        assert rewritten.left.base.is_null()
        assert not any("R5" in rule for rule in rules)

    @pytest.mark.parametrize("op", ["c", "d", "dc"])
    def test_r6_pushes_scope_into_descendant_operands(self, op):
        third = " (name=e1, name=e0 ? sub ? kind=gamma)" if op == "dc" else ""
        query = parse_query(
            "(%s (name=e1, name=e0 ? sub ? kind=alpha) ( ? sub ? kind=beta)%s)"
            % (op, third)
        )
        rewritten, rules = rewrite(query)
        assert str(rewritten.second.base) == "name=e1, name=e0"
        assert any("R6" in rule for rule in rules)

    @pytest.mark.parametrize("op", ["p", "a", "ac"])
    def test_r6_not_applied_to_ancestor_operators(self, op):
        # Witnesses of p/a/ac are ancestors -- they escape the first
        # operand's subtree, so push-down would lose results.
        third = " (name=e1, name=e0 ? sub ? kind=gamma)" if op == "ac" else ""
        query = parse_query(
            "(%s (name=e1, name=e0 ? sub ? kind=alpha) ( ? sub ? kind=beta)%s)"
            % (op, third)
        )
        rewritten, rules = rewrite(query)
        assert rewritten.second.base.is_null()
        assert not any("R6" in rule for rule in rules)

    @pytest.mark.parametrize("seed", range(6))
    def test_new_rewrites_preserve_semantics(self, seed):
        # Deliberately shaped to hit R4/R5/R6 on random instances.
        instance = random_instance(seed, size=70)
        dns = [entry.dn for entry in instance]
        deep = max(dns, key=lambda dn: len(dn))
        shapes = [
            "(& ( ? sub ? objectClass=*) (%s ? sub ? kind=alpha))" % deep,
            "(| ( ? sub ? objectClass=*) (%s ? sub ? kind=beta))" % deep,
            "(- (%s ? sub ? kind=alpha) ( ? sub ? kind=beta))" % deep,
            "(c (%s ? sub ? kind=alpha) ( ? sub ? weight<50))" % deep,
            "(dc (%s ? sub ? kind=alpha) ( ? sub ? kind=beta) ( ? sub ? weight<50))"
            % deep,
        ]
        for text in shapes:
            query = parse_query(text)
            rewritten, _rules = rewrite(query)
            assert [e.dn for e in evaluate(rewritten, instance)] == [
                e.dn for e in evaluate(query, instance)
            ], text


class TestReorder:
    def test_selective_operand_moves_first(self, store):
        _instance, s = store
        estimator = AccessPlanner(s).estimator
        query = parse_query("(& ( ? sub ? kind=alpha) ( ? sub ? name=e17))")
        notes = []
        ordered = reorder_operands(query, estimator, notes)
        assert str(ordered.left.filter) == "name=e17"
        assert any("R7" in note for note in notes)

    def test_already_ordered_left_alone(self, store):
        _instance, s = store
        estimator = AccessPlanner(s).estimator
        query = parse_query("(& ( ? sub ? name=e17) ( ? sub ? kind=alpha))")
        notes = []
        ordered = reorder_operands(query, estimator, notes)
        assert str(ordered.left.filter) == "name=e17"
        assert notes == []

    def test_diff_never_reordered(self, store):
        _instance, s = store
        estimator = AccessPlanner(s).estimator
        query = parse_query("(- ( ? sub ? kind=alpha) ( ? sub ? name=e17))")
        ordered = reorder_operands(query, estimator, [])
        assert isinstance(ordered, Diff)
        assert str(ordered.left.filter) == "kind=alpha"

    @pytest.mark.parametrize("seed", range(6))
    def test_reorder_preserves_semantics(self, store, seed):
        instance, s = store
        estimator = AccessPlanner(s).estimator
        queries = RandomQueries(instance, seed=seed + 29)
        for _ in range(6):
            query = queries.any_level(depth=2)
            ordered = reorder_operands(query, estimator, [])
            assert [e.dn for e in evaluate(ordered, instance)] == [
                e.dn for e in evaluate(query, instance)
            ], str(query)


class TestShortCircuit:
    def test_empty_first_operand_skips_second(self, store):
        _instance, s = store
        eager = PlannedEngine(s, short_circuit=False)
        lazy = PlannedEngine(s)
        query = "(& ( ? sub ? name=nosuchentry) ( ? sub ? kind=alpha))"
        eager_result = eager.run(query)
        lazy_result = lazy.run(query)
        assert lazy_result.dns() == eager_result.dns() == []
        assert lazy.short_circuits >= 1
        lazy_cost = lazy_result.io.logical_reads + lazy_result.io.logical_writes
        eager_cost = eager_result.io.logical_reads + eager_result.io.logical_writes
        assert lazy_cost < eager_cost

    def test_diff_short_circuits_too(self, store):
        _instance, s = store
        engine = PlannedEngine(s)
        before = engine.short_circuits
        result = engine.run("(- ( ? sub ? name=nosuchentry) ( ? sub ? kind=alpha))")
        assert result.dns() == []
        assert engine.short_circuits > before

    def test_nonempty_first_operand_merges_normally(self, store):
        instance, s = store
        engine = PlannedEngine(s)
        query = parse_query("(& ( ? sub ? kind=alpha) ( ? sub ? weight<50))")
        assert engine.run(query).dns() == [
            str(e.dn) for e in evaluate(query, instance)
        ]


class TestQError:
    def test_symmetric_and_floored(self):
        assert qerror(10, 5) == 2.0
        assert qerror(5, 10) == 2.0
        assert qerror(0, 0) == 1.0
        assert qerror(0, 7) == 7.0

    def test_route_hints_quiet_under_threshold(self):
        leaf = parse_query("( ? sub ? kind=alpha)")
        assert route_hints(leaf, 100, 90) == []

    def test_route_hints_fire_at_alert(self):
        leaf = parse_query("( ? sub ? name=*17*)")
        hints = route_hints(leaf, 400, int(400 / QERROR_ALERT) - 1)
        assert hints and "string index" in hints[0]

    def test_boolean_symptom_routes_to_correlation(self):
        node = parse_query("(& ( ? sub ? kind=alpha) ( ? sub ? weight<50))")
        hints = route_hints(node, 100, 5)
        assert hints and "correlated" in hints[0]

    def test_run_records_run_level_qerror(self, store):
        _instance, s = store
        engine = PlannedEngine(s)
        assert engine.last_qerror is None
        engine.run("( ? sub ? kind=alpha)")
        assert engine.last_qerror is not None and engine.last_qerror >= 1.0

    def test_analyze_reports_per_node_qerror(self, store):
        _instance, s = store
        node = explain(s, parse_query("( ? sub ? kind=alpha)"), analyze=True)
        assert node.qerror is not None
        assert "qerr=" in str(node)

    def test_analyze_observes_histogram(self, store):
        from repro.obs.metrics import MetricsRegistry

        _instance, s = store
        registry = MetricsRegistry()
        explain(
            s,
            parse_query("(& ( ? sub ? kind=alpha) ( ? sub ? weight<50))"),
            analyze=True,
            metrics=registry,
        )
        histogram = registry.get("repro_planner_qerror")
        assert histogram is not None
        # One observation per analyzed operator: the And and two leaves.
        assert histogram.count() == 3

    def test_estimate_cardinality_matches_explain(self, store):
        _instance, s = store
        planner = AccessPlanner(s)
        query = parse_query("(| ( ? sub ? kind=alpha) ( ? sub ? kind=beta))")
        node = explain(s, query, planner=planner)
        assert node.estimate == estimate_cardinality(query, planner.estimator)


class TestAccessPlanner:
    def test_selective_equality_uses_index(self, store):
        _instance, s = store
        planner = AccessPlanner(s)
        use_index, label, _est = planner.plan_leaf(
            parse_query("( ? sub ? name=e17)")
        )
        assert use_index
        assert "strindex" in label

    def test_unselective_filter_scans(self, store):
        _instance, s = store
        planner = AccessPlanner(s)
        use_index, label, _est = planner.plan_leaf(
            parse_query("( ? sub ? kind=alpha)")
        )
        # ~25% of entries match: fetching one page per match is worse than
        # the clustered scan.
        assert not use_index
        assert "scan" in label

    def test_unindexed_attribute_scans(self, store):
        _instance, s = store
        planner = AccessPlanner(s)
        use_index, _label, _est = planner.plan_leaf(
            parse_query("( ? sub ? level<3)")
        )
        assert not use_index


class TestPlannedEngine:
    @pytest.mark.parametrize("seed", range(6))
    def test_differential(self, store, seed):
        instance, s = store
        engine = PlannedEngine(s)
        queries = RandomQueries(instance, seed=seed + 11)
        for _ in range(6):
            query = queries.any_level()
            assert engine.run(query).dns() == [
                str(e.dn) for e in evaluate(query, instance)
            ], str(query)

    def test_r1_rewrite_saves_io(self, store):
        _instance, s = store
        planned = PlannedEngine(s)
        unplanned = QueryEngine(s, use_indices=False)
        query = (
            "(ac ( ? sub ? name=e5) ( ? sub ? name=e1) ( ? sub ? objectClass=*))"
        )
        planned_result = planned.run(query)
        unplanned_result = unplanned.run(query)
        assert planned_result.dns() == unplanned_result.dns()
        assert any("R1" in rule for rule in planned.last_rewrites)
        planned_cost = planned_result.io.logical_reads + planned_result.io.logical_writes
        unplanned_cost = (
            unplanned_result.io.logical_reads + unplanned_result.io.logical_writes
        )
        assert planned_cost * 5 < unplanned_cost


class TestExplain:
    def test_tree_shape_and_estimates(self, store):
        _instance, s = store
        node = explain(
            s,
            parse_query(
                "(c ( ? sub ? kind=alpha) ( ? sub ? weight<50) count($2) > 1)"
            ),
        )
        text = str(node)
        assert "hierarchy c +agg" in text
        assert "atomic" in text
        assert "est=" in text

    def test_analyze_adds_actuals(self, store):
        instance, s = store
        query = parse_query("( ? sub ? kind=alpha)")
        node = explain(s, query, analyze=True)
        actual = len(evaluate(query, instance))
        assert node.actual == actual
        assert "actual=%d" % actual in str(node)

    def test_rewrites_reported(self, store):
        _instance, s = store
        node = explain(
            s,
            parse_query(
                "(ac ( ? sub ? kind=alpha) ( ? sub ? kind=beta)"
                " ( ? sub ? objectClass=*))"
            ),
        )
        assert "R1" in str(node)
