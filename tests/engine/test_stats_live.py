"""Live statistics: incremental deltas, compaction rebuilds, and the
stale-estimate regression the planner wiring fixes."""

import pytest

from repro.engine.stats import (
    CardinalityEstimator,
    DirectoryStatistics,
    LiveDirectoryStatistics,
)
from repro.query.parser import parse_query
from repro.storage.maintenance import UpdatableDirectory
from repro.workload import balanced_instance


def make_directory(size=200):
    instance = balanced_instance(size, fanout=4, seed=9)
    return UpdatableDirectory.from_instance(instance, page_size=8, buffer_pages=6)


def leaf_dns(directory):
    """DNs deepest-first, so deleting a prefix of the list never orphans
    children."""
    dns = [entry.dn for entry in directory.store.scan_all()]
    return sorted(dns, key=lambda dn: -len(dn))


class TestStaleStatisticsRegression:
    """ISSUE 9 bugfix: an estimator built before a batch of updates kept
    estimating from the dead snapshot (load -> delete half -> estimates
    stay ~2x actual).  Live statistics track the directory instead."""

    def test_snapshot_estimator_goes_stale(self):
        # The pre-fix behaviour, pinned down: this is the bug.
        directory = make_directory(200)
        snapshot = DirectoryStatistics.collect(directory.store)
        for dn in leaf_dns(directory)[:100]:
            directory.delete(dn)
        directory.compact()
        actual = len(directory.store)
        assert snapshot.total_entries >= 2 * actual

    def test_live_estimator_tracks_deletes(self):
        # The fix: the same scenario through LiveDirectoryStatistics.
        directory = make_directory(200)
        live = LiveDirectoryStatistics(directory)
        assert live.current().total_entries == 200
        for dn in leaf_dns(directory)[:100]:
            directory.delete(dn)
        directory.compact()
        actual = len(directory.store)
        assert live.current().total_entries == actual

    def test_whole_instance_estimate_matches_after_delete_half(self):
        directory = make_directory(200)
        live = LiveDirectoryStatistics(directory)
        estimator = CardinalityEstimator(directory.store, stats=live)
        whole = parse_query("( ? sub ? objectClass=*)")
        assert estimator.atomic_cardinality(whole) == pytest.approx(200, rel=0.1)
        for dn in leaf_dns(directory)[:100]:
            directory.delete(dn)
        directory.compact()
        estimate = estimator.atomic_cardinality(whole)
        actual = len(directory.store)
        assert estimate == pytest.approx(actual, rel=0.1)


class TestIncrementalDeltas:
    def test_add_applies_without_rebuild(self):
        directory = make_directory(100)
        live = LiveDirectoryStatistics(directory)
        live.current()
        rebuilds = live.rebuilds
        directory.add(
            "name=fresh, name=e0", ["node"],
            name="fresh", kind="alpha", level=3, weight=10,
        )
        stats = live.current()
        assert stats.total_entries == 101
        assert live.rebuilds == rebuilds  # the delta sufficed
        assert live.deltas_applied >= 1

    def test_leaf_delete_applies_via_pre_image(self):
        directory = make_directory(100)
        live = LiveDirectoryStatistics(directory)
        live.current()
        rebuilds = live.rebuilds
        victim = leaf_dns(directory)[0]
        directory.delete(victim)
        assert live.current().total_entries == 99
        assert live.rebuilds == rebuilds

    def test_modify_shifts_attribute_counters(self):
        directory = make_directory(100)
        live = LiveDirectoryStatistics(directory)
        before = live.current().attributes["kind"].entries_with
        victim = next(
            entry for entry in directory.store.scan_all()
            if entry.values("kind")
        )
        directory.modify(victim.dn, replace={"kind": []})
        after = live.current().attributes["kind"].entries_with
        assert after == before - 1

    def test_subtree_delete_forces_rebuild(self):
        directory = make_directory(100)
        live = LiveDirectoryStatistics(directory)
        live.current()
        rebuilds = live.rebuilds
        # name=e1, name=e0 roots an interior subtree of the balanced shape.
        directory.delete("name=e1, name=e0", recursive=True)
        assert live.stale
        directory.compact()
        stats = live.current()
        assert stats.total_entries == len(directory.store)
        assert live.rebuilds > rebuilds

    def test_rebuild_folds_uncompacted_overlay(self):
        # current() must be exact even when updates are still pending in
        # the MVCC overlay (no compaction yet).
        directory = make_directory(100)
        live = LiveDirectoryStatistics(directory)
        directory.delete("name=e1, name=e0", recursive=True)  # -> stale
        directory.add(
            "name=extra, name=e0", ["node"],
            name="extra", kind="beta", level=1, weight=5,
        )
        assert directory.pending() > 0
        stats = live.current()
        assert stats.total_entries == len(directory)

    def test_detach_stops_tracking(self):
        directory = make_directory(50)
        live = LiveDirectoryStatistics(directory)
        assert live.current().total_entries == 50
        live.detach()
        directory.delete(leaf_dns(directory)[0])
        assert live.current().total_entries == 50  # frozen at detach
