"""Stress and degenerate shapes: deep chains (stack spilling), wide stars,
empty operands, pathological labels."""

import pytest

from repro.engine import QueryEngine
from repro.engine.stackjoin import hierarchical_annotate
from repro.model.dn import ROOT_DN
from repro.model.instance import DirectoryInstance
from repro.query.aggregates import EntryAggregate
from repro.query.semantics import evaluate, witness_set
from repro.query.parser import parse_query
from repro.storage.pager import Pager
from repro.storage.runs import run_from_iterable
from repro.workload import synthetic_schema

COUNT = EntryAggregate("count", "$2", None)


def chain_instance(depth: int) -> DirectoryInstance:
    """A single path of ``depth`` entries: the stack holds everything."""
    instance = DirectoryInstance(synthetic_schema())
    dn = ROOT_DN
    for index in range(depth):
        dn = dn.child("name=c%d" % index)
        instance.add(dn, ["node"], name="c%d" % index,
                     kind="alpha" if index % 2 == 0 else "beta",
                     level=index % 10)
    return instance


def star_instance(width: int) -> DirectoryInstance:
    """One root with ``width`` children: maximal fanout, depth 2."""
    instance = DirectoryInstance(synthetic_schema())
    root = ROOT_DN.child("name=root")
    instance.add(root, ["node"], name="root", kind="alpha")
    for index in range(width):
        instance.add(root.child("name=s%d" % index), ["node"],
                     name="s%d" % index, kind="beta", weight=index % 100)
    return instance


class TestDeepChain:
    def test_chain_forces_stack_spill_yet_correct(self):
        depth = 300
        instance = chain_instance(depth)
        # page_size 4 and a chain of 300: the stack must spill repeatedly.
        engine = QueryEngine.from_instance(instance, page_size=4, buffer_pages=3)
        query = parse_query("(a ( ? sub ? kind=beta) ( ? sub ? kind=alpha))")
        expected = [str(e.dn) for e in evaluate(query, instance)]
        assert engine.run(query).dns() == expected
        assert len(expected) == depth // 2  # every beta has an alpha ancestor

    def test_chain_descendant_counts(self):
        instance = chain_instance(120)
        entries = list(instance)
        pager = Pager(page_size=4, buffer_pages=3)
        first = run_from_iterable(pager, entries)
        second = run_from_iterable(pager, entries)
        annotated = hierarchical_annotate(pager, "d", first, second, None, [COUNT])
        for position, (entry, (count,)) in enumerate(annotated.to_list()):
            assert count == len(entries) - position - 1

    def test_chain_blocking_every_other(self):
        instance = chain_instance(60)
        engine = QueryEngine.from_instance(instance, page_size=4, buffer_pages=3)
        query = parse_query(
            "(ac ( ? sub ? kind=beta) ( ? sub ? kind=alpha) ( ? sub ? kind=beta))"
        )
        expected = [str(e.dn) for e in evaluate(query, instance)]
        assert engine.run(query).dns() == expected


class TestStar:
    def test_children_count_at_root(self):
        instance = star_instance(500)
        engine = QueryEngine.from_instance(instance, page_size=16, buffer_pages=4)
        result = engine.run(
            "(c ( ? sub ? name=root) ( ? sub ? kind=beta) count($2) = 500)"
        )
        assert len(result) == 1

    def test_parent_witnesses_for_all_leaves(self):
        instance = star_instance(200)
        engine = QueryEngine.from_instance(instance, page_size=8, buffer_pages=4)
        result = engine.run("(p ( ? sub ? kind=beta) ( ? sub ? name=root))")
        assert len(result) == 200


class TestEmptyAndOverlap:
    def test_empty_operands_everywhere(self):
        instance = chain_instance(10)
        engine = QueryEngine.from_instance(instance, page_size=4)
        nothing = "( ? sub ? name=nosuch)"
        everything = "( ? sub ? objectClass=*)"
        for template in (
            "(a %s %s)", "(d %s %s)", "(p %s %s)", "(c %s %s)",
            "(& %s %s)", "(- %s %s)",
            "(vd %s %s ref)", "(dv %s %s ref)",
        ):
            assert engine.run(template % (nothing, everything)).dns() == [], template
        # Union with an empty side is the other side.
        assert len(engine.run("(| %s %s)" % (nothing, everything))) == 10
        # Empty second operand: nothing qualifies either.
        assert engine.run("(a %s %s)" % (everything, nothing)).dns() == []

    def test_identical_operands(self):
        # Witness relations are proper: no entry witnesses itself.
        instance = chain_instance(20)
        engine = QueryEngine.from_instance(instance, page_size=4)
        everything = "( ? sub ? objectClass=*)"
        result = engine.run("(d %s %s)" % (everything, everything))
        # All but the deepest entry have a proper descendant.
        assert len(result) == 19
        result = engine.run("(a %s %s)" % (everything, everything))
        assert len(result) == 19

    def test_aggregate_on_empty_population(self):
        instance = chain_instance(10)
        engine = QueryEngine.from_instance(instance, page_size=4)
        result = engine.run(
            "(g ( ? sub ? name=nosuch) min(level)=min(min(level)))"
        )
        assert result.dns() == []
