"""Statistics collection and cardinality estimation."""

import pytest

from repro.engine.stats import CardinalityEstimator, DirectoryStatistics
from repro.filters.parser import parse_atomic_filter, parse_filter
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.storage.store import DirectoryStore
from repro.workload import balanced_instance, random_instance


@pytest.fixture(scope="module")
def setup():
    instance = balanced_instance(2000, fanout=4, seed=2)
    store = DirectoryStore.from_instance(instance, page_size=16, buffer_pages=8)
    stats = DirectoryStatistics.collect(store)
    return instance, store, stats


class TestCollection:
    def test_totals(self, setup):
        instance, _store, stats = setup
        assert stats.total_entries == len(instance)
        assert sum(stats.depth_counts.values()) == len(instance)

    def test_attribute_counts(self, setup):
        instance, _store, stats = setup
        kind = stats.attribute("kind")
        assert kind.entries_with == sum(1 for e in instance if e.has("kind"))
        weight = stats.attribute("weight")
        assert weight.int_min is not None and weight.int_max is not None
        assert weight.int_min <= weight.int_max
        assert sum(weight.histogram) == weight.value_count

    def test_top_values(self, setup):
        instance, _store, stats = setup
        kind = stats.attribute("kind")
        exact = {}
        for entry in instance:
            for value in entry.values("kind"):
                exact[value] = exact.get(value, 0) + 1
        for value, count in kind.top_values.items():
            assert exact[value] == count

    def test_missing_attribute(self, setup):
        _instance, _store, stats = setup
        assert stats.attribute("nosuchattr") is None


class TestEstimation:
    def _actual_fraction(self, instance, filter_text):
        filter_ = parse_filter(filter_text)
        hits = sum(1 for e in instance if filter_.matches(e, instance.schema))
        return hits / len(instance)

    @pytest.mark.parametrize(
        "filter_text",
        [
            "kind=alpha",
            "weight<25",
            "weight>=80",
            "level<5",
            "tag=*",
            "(&(kind=alpha)(weight<50))",
            "(|(kind=alpha)(kind=beta))",
            "(!(kind=alpha))",
        ],
    )
    def test_selectivity_close(self, setup, filter_text):
        instance, store, stats = setup
        estimator = CardinalityEstimator(store, stats)
        estimated = estimator.filter_selectivity(parse_filter(filter_text))
        actual = self._actual_fraction(instance, filter_text)
        assert abs(estimated - actual) < 0.15, (filter_text, estimated, actual)

    def test_atomic_cardinality_tracks_actual(self, setup):
        instance, store, stats = setup
        estimator = CardinalityEstimator(store, stats)
        for text in (
            "( ? sub ? kind=alpha)",
            "( ? sub ? weight<10)",
            "(name=e1, name=e0 ? sub ? objectClass=*)",
        ):
            query = parse_query(text)
            estimated = estimator.atomic_cardinality(query)
            actual = len(evaluate(query, instance))
            assert estimated >= actual * 0.3 - 2, text
            assert estimated <= actual * 3 + 40, text

    def test_base_scope_is_one(self, setup):
        from repro.model.dn import DN

        _instance, store, stats = setup
        estimator = CardinalityEstimator(store, stats)
        assert estimator.scope_size(DN.parse("name=e0"), "base") == 1
