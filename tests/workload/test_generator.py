"""Workload generators: validity, determinism, shape control."""

import pytest

from repro.query.ast import language_level
from repro.workload import RandomQueries, balanced_instance, random_instance


class TestRandomInstance:
    def test_size(self):
        assert len(random_instance(1, size=40)) == 40

    def test_schema_valid(self):
        assert random_instance(2, size=60).validate() == []

    def test_deterministic(self):
        a = random_instance(3, size=50)
        b = random_instance(3, size=50)
        assert [str(e.dn) for e in a] == [str(e.dn) for e in b]
        for left, right in zip(a, b):
            assert left.same_content(right)

    def test_different_seeds_differ(self):
        a = random_instance(4, size=50)
        b = random_instance(5, size=50)
        assert [str(e.dn) for e in a] != [str(e.dn) for e in b]

    def test_max_children_respected(self):
        instance = random_instance(6, size=80, max_children=2)
        for entry in instance:
            assert len(list(instance.children_of(entry.dn))) <= 2

    def test_forest_roots(self):
        instance = random_instance(7, size=40, forest_roots=3)
        assert len([e for e in instance if e.dn.depth() == 1]) == 3

    def test_refs_point_at_existing_entries(self):
        instance = random_instance(8, size=60, ref_density=1.0)
        dns = {e.dn for e in instance}
        ref_count = 0
        for entry in instance:
            for ref in entry.values("ref"):
                ref_count += 1
                assert ref in dns
        assert ref_count > 0


class TestBalancedInstance:
    def test_shape(self):
        instance = balanced_instance(85, fanout=4)
        assert len(instance) == 85
        for entry in instance:
            assert len(list(instance.children_of(entry.dn))) <= 4

    def test_single_root(self):
        instance = balanced_instance(50, fanout=3)
        assert len(list(instance.roots())) == 1


class TestRandomQueries:
    def test_levels_bounded(self):
        instance = random_instance(9, size=40)
        queries = RandomQueries(instance, seed=0)
        for _ in range(20):
            assert language_level(queries.l0()) == 0
            assert language_level(queries.l1()) <= 1
            assert language_level(queries.l2()) <= 2
            assert language_level(queries.l3()) == 3

    def test_deterministic(self):
        instance = random_instance(10, size=40)
        a = RandomQueries(instance, seed=5)
        b = RandomQueries(instance, seed=5)
        assert [str(a.any_level()) for _ in range(10)] == [
            str(b.any_level()) for _ in range(10)
        ]
