"""Differential property under chaos: a completed federated query equals
the single-server answer exactly; a partial answer is a subset of it.

The subset guarantee is stated for *monotone* queries only (And/Or trees
over atomic leaves).  Diff is not monotone: dropping a server's sublist
from the right-hand side of a difference can only *grow* the answer, so
partial results there may be supersets -- the trees below deliberately
exclude it.
"""

import pytest

from repro.dist import FaultInjector, FaultPlan, FederatedDirectory, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.query.ast import And, Or
from repro.query.semantics import evaluate
from repro.workload import RandomQueries, random_instance


def monotone_query(queries: RandomQueries, depth: int = 2):
    """An And/Or (negation-free) tree over random atomic leaves."""
    if depth <= 0 or queries.rng.random() < 0.4:
        return queries.atomic()
    ctor = queries.rng.choice([And, Or])
    return ctor(
        monotone_query(queries, depth - 1), monotone_query(queries, depth - 1)
    )


def build_federation(instance, drop_rate, seed, max_attempts):
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
    registry = MetricsRegistry()
    network = FaultInjector(
        FaultPlan(seed=seed, drop_rate=drop_rate), metrics=registry
    )
    fed = FederatedDirectory.partition(
        instance,
        assignments,
        page_size=8,
        network=network,
        leaf_cache_bytes=0,  # every leaf goes over the wire
        metrics=registry,
    )
    fed.enable_resilience(
        retry=RetryPolicy(max_attempts=max_attempts, backoff_s=0.001, seed=seed),
        serve_stale=False,  # degraded rungs would mask the subset property
    )
    return fed


@pytest.mark.parametrize("seed", range(6))
def test_completed_equals_oracle_and_partial_is_subset(seed):
    instance = random_instance(41 + seed, size=150, forest_roots=3)
    fed = build_federation(
        instance, drop_rate=0.4, seed=seed, max_attempts=2
    )
    queries = RandomQueries(instance, seed=seed)
    servers = sorted(fed.servers)
    saw_partial = saw_complete = 0
    for index in range(30):
        query = monotone_query(queries)
        expected = [str(e.dn) for e in evaluate(query, instance)]
        result = fed.query(servers[index % len(servers)], query)
        got = result.dns()
        if result.partial:
            saw_partial += 1
            kept = set(got)
            assert kept <= set(expected), str(query)
            # ...and preserves the oracle's order (a true sublist).
            assert got == [dn for dn in expected if dn in kept], str(query)
        else:
            saw_complete += 1
            assert got == expected, str(query)
    # At 40% drop with two attempts the workload must exercise both arms.
    assert saw_partial > 0 and saw_complete > 0


def test_no_faults_means_every_query_is_exact():
    instance = random_instance(47, size=120, forest_roots=2)
    fed = build_federation(instance, drop_rate=0.0, seed=0, max_attempts=4)
    queries = RandomQueries(instance, seed=3)
    for _ in range(15):
        query = monotone_query(queries)
        result = fed.query("server0", query)
        assert not result.partial and not result.warnings
        assert result.dns() == [str(e.dn) for e in evaluate(query, instance)]
    assert fed.network.fault_count() == 0
