"""Client-chased referrals vs server-side federation."""

import pytest

from repro.dist import FederatedDirectory
from repro.dist.referral import ReferralClient, ReferralError
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.workload import random_instance


@pytest.fixture(scope="module")
def setup():
    instance = random_instance(33, size=120, forest_roots=3)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    assignments = {"s%d" % i: [root] for i, root in enumerate(roots)}
    deep = next(e.dn for e in instance if e.dn.depth() == 2)
    assignments["delegated"] = [deep]
    federation = FederatedDirectory.partition(instance, assignments, page_size=8)
    return instance, federation, roots, deep


class TestReferralChasing:
    def test_local_base_no_referral(self, setup):
        instance, federation, roots, _deep = setup
        client = ReferralClient(federation, home="s0")
        entries = client.search("(%s ? sub ? kind=alpha)" % roots[0])
        expected = evaluate(
            parse_query("(%s ? sub ? kind=alpha)" % roots[0]), instance
        )
        assert [e.dn for e in entries] == [e.dn for e in expected]
        assert all("referral" not in outcome for _s, outcome in client.trace[:1])

    def test_remote_base_chased(self, setup):
        instance, federation, roots, _deep = setup
        client = ReferralClient(federation, home="s0")
        query_text = "(%s ? sub ? kind=beta)" % roots[1]
        entries = client.search(query_text)
        expected = evaluate(parse_query(query_text), instance)
        assert [e.dn for e in entries] == [e.dn for e in expected]
        assert any("referral" in outcome for _s, outcome in client.trace)

    def test_spanning_delegation_correct(self, setup):
        instance, federation, _roots, deep = setup
        parent = deep.parent
        client = ReferralClient(federation, home="s0")
        query_text = "(%s ? sub ? objectClass=*)" % parent
        entries = client.search(query_text)
        expected = evaluate(parse_query(query_text), instance)
        assert [e.dn for e in entries] == [e.dn for e in expected]

    def test_matches_federation(self, setup):
        instance, federation, roots, _deep = setup
        client = ReferralClient(federation, home="s0")
        for root in roots:
            query_text = "(%s ? sub ? weight>=50)" % root
            via_referral = client.search(query_text)
            via_federation = federation.query("s0", query_text)
            assert [str(e.dn) for e in via_referral] == via_federation.dns()

    def test_composite_rejected(self, setup):
        _instance, federation, roots, _deep = setup
        client = ReferralClient(federation, home="s0")
        with pytest.raises(ReferralError):
            client.search(
                "(& (%s ? sub ? kind=alpha) (%s ? sub ? kind=beta))"
                % (roots[0], roots[0])
            )

    def test_messages_counted(self, setup):
        _instance, federation, roots, _deep = setup
        before = federation.network.messages
        client = ReferralClient(federation, home="s0")
        client.search("(%s ? base ? objectClass=*)" % roots[1])
        # request + referral + request + result = 4 messages minimum.
        assert federation.network.messages - before >= 4
