"""Distributed evaluation (Section 8.3): locator, partitioning,
correctness vs the centralised engine, and network accounting."""

import pytest

from repro.dist import FederatedDirectory, LocatorError, ServerLocator, SimulatedNetwork
from repro.model.dn import DN
from repro.query.semantics import evaluate
from repro.workload import RandomQueries, random_instance


class TestLocator:
    def test_most_specific_wins(self):
        locator = ServerLocator()
        locator.register("dc=com", "top")
        locator.register("dc=att, dc=com", "att")
        assert locator.locate("dc=com") == "top"
        assert locator.locate("dc=att, dc=com") == "att"
        assert locator.locate("cn=x, dc=att, dc=com") == "att"
        assert locator.locate("dc=ibm, dc=com") == "top"

    def test_unowned(self):
        locator = ServerLocator()
        locator.register("dc=com", "top")
        with pytest.raises(LocatorError):
            locator.locate("dc=org")

    def test_secondary_preference(self):
        locator = ServerLocator()
        locator.register("dc=com", "primary", secondaries=["backup"])
        assert locator.locate("dc=com", prefer_secondary=True) == "backup"
        assert locator.locate("dc=com") == "primary"

    def test_contexts_of(self):
        locator = ServerLocator()
        locator.register("dc=com", "s")
        locator.register("dc=org", "s")
        assert [str(c) for c in locator.contexts_of("s")] == ["dc=com", "dc=org"]


@pytest.fixture(scope="module")
def federation():
    instance = random_instance(19, size=150, forest_roots=3)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
    # Delegate one depth-2 subtree to its own server (DNS-style subdomain).
    deep = next(e.dn for e in instance if e.dn.depth() == 2)
    assignments["delegated"] = [deep]
    fed = FederatedDirectory.partition(instance, assignments, page_size=8)
    return instance, fed


class TestPartition:
    def test_conservation(self, federation):
        instance, fed = federation
        assert fed.total_entries() == len(instance)

    def test_delegation_shadows_parent(self, federation):
        instance, fed = federation
        delegated = fed.servers["delegated"]
        context = delegated.contexts[0]
        inside = [e for e in instance if context.is_prefix_of(e.dn)]
        assert delegated.entry_count() == len(inside)
        for name, server in fed.servers.items():
            if name == "delegated":
                continue
            for entry in inside:
                assert server.engine.store.scan_subtree(entry.dn) is not None
                # the parent server must NOT hold delegated entries
                held = [e.dn for e in server.engine.store.scan_all()]
                assert entry.dn not in held


class TestQueries:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_centralised(self, federation, seed):
        instance, fed = federation
        queries = RandomQueries(instance, seed=seed)
        at = sorted(fed.servers)[seed % len(fed.servers)]
        query = queries.any_level()
        got = fed.query(at, query).dns()
        expected = [str(e.dn) for e in evaluate(query, instance)]
        assert got == expected, str(query)

    def test_local_query_ships_nothing(self, federation):
        instance, fed = federation
        delegated = fed.servers["delegated"]
        context = delegated.contexts[0]
        result = fed.query("delegated", "(%s ? sub ? objectClass=*)" % context)
        assert result.messages == 0
        assert result.entries_shipped == 0
        assert len(result) == delegated.entry_count()

    def test_remote_query_ships_results_only(self, federation):
        instance, fed = federation
        delegated = fed.servers["delegated"]
        context = delegated.contexts[0]
        other = next(name for name in sorted(fed.servers) if name != "delegated")
        result = fed.query(other, "(%s ? sub ? kind=alpha)" % context)
        expected = [
            e for e in instance
            if context.is_prefix_of(e.dn) and "alpha" in map(str, e.values("kind"))
        ]
        assert len(result) == len(expected)
        assert result.messages == 2  # request + response
        assert result.entries_shipped == len(expected)  # results, not inputs

    def test_sub_scope_spanning_delegation(self, federation):
        """A sub query at a context that has a delegated subdomain inside
        must gather from both servers."""
        instance, fed = federation
        delegated_context = fed.servers["delegated"].contexts[0]
        parent_root = DN(delegated_context.rdns[-1:])  # the forest root above
        at = fed.locator.locate(parent_root)
        result = fed.query(at, "(%s ? sub ? objectClass=*)" % parent_root)
        expected = [e for e in instance if parent_root.is_prefix_of(e.dn)]
        assert len(result) == len(expected)
        assert result.messages >= 2  # had to contact the delegated server


class TestNetwork:
    def test_counters(self):
        network = SimulatedNetwork(keep_log=True)
        network.send("a", "b", "request")
        network.send("b", "a", "result", entry_count=5)
        assert network.messages == 2
        assert network.entries_shipped == 5
        assert network.log[1] == ("b", "a", "result", 5)
        network.reset()
        assert network.messages == 0
