"""Deterministic consistency harness over seeded chaos schedules.

Each seed drives one Jepsen-style schedule -- writes, syncs, reads,
crashes, partitions, failovers and (in durable mode) mid-commit process
crashes -- then checks the group against an oracle: no acked write lost,
prefix-consistent replica reads, per-epoch monotone LSNs, bounded
staleness, final convergence.
"""

import pytest

from repro.dist.consistency import ConsistencyHarness, run_matrix

SEEDS = list(range(20))


class TestQuorumMatrix:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_matrix(SEEDS, secondaries=2, steps=48, ack="quorum")

    def test_all_seeds_hold_every_invariant(self, reports):
        failed = [r for r in reports if not r.ok]
        assert not failed, "\n".join(
            "seed %d: %s" % (r.seed, "; ".join(r.violations)) for r in failed
        )

    def test_no_acked_write_is_ever_lost(self, reports):
        assert all(r.writes_lost_acked == 0 for r in reports)

    def test_no_split_brain(self, reports):
        assert all(r.checks["no_split_brain"] for r in reports)
        # Fencing actually fired somewhere in the matrix -- the invariant
        # is tested, not vacuous.
        assert sum(r.fenced_rejections for r in reports) > 0

    def test_schedules_exercise_real_chaos(self, reports):
        assert sum(r.failovers for r in reports) >= 10
        assert sum(r.resyncs for r in reports) > 0
        assert sum(r.writes_acked for r in reports) > 100
        assert any(r.final_epoch > 1 for r in reports)

    def test_reads_were_checked(self, reports):
        assert sum(r.reads for r in reports) > 50
        assert all(r.checks["bounded_staleness"] for r in reports)
        assert all(r.checks["prefix_consistency"] for r in reports)


class TestAckPrimaryTolerance:
    def test_primary_ack_may_lose_acked_writes_but_tracks_them(self):
        reports = run_matrix(range(10), secondaries=2, steps=48, ack="primary")
        failed = [r for r in reports if not r.ok]
        assert not failed, "\n".join(
            "seed %d: %s" % (r.seed, "; ".join(r.violations)) for r in failed
        )
        # ack="primary" acknowledges before shipping, so a failover can
        # legitimately disown acked writes; the harness tolerates and
        # *counts* them instead of flagging a violation.
        assert all(r.checks["acked_write_durability"] for r in reports)


class TestDurableMatrix:
    def test_process_crashes_recover_without_losing_acked_writes(self, tmp_path):
        reports = run_matrix(
            range(6), secondaries=2, steps=40, ack="quorum",
            durable_root=str(tmp_path),
        )
        failed = [r for r in reports if not r.ok]
        assert not failed, "\n".join(
            "seed %d: %s" % (r.seed, "; ".join(r.violations)) for r in failed
        )
        assert sum(r.process_crashes for r in reports) > 0
        assert all(r.writes_lost_acked == 0 for r in reports)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = ConsistencyHarness(seed=3, secondaries=2, steps=40).run()
        second = ConsistencyHarness(seed=3, secondaries=2, steps=40).run()
        assert first.to_dict() == second.to_dict()

    def test_different_seeds_diverge(self):
        first = ConsistencyHarness(seed=1, secondaries=2, steps=40).run()
        second = ConsistencyHarness(seed=2, secondaries=2, steps=40).run()
        assert first.to_dict() != second.to_dict()

    def test_report_shape(self):
        report = ConsistencyHarness(seed=0, steps=24).run()
        payload = report.to_dict()
        assert payload["seed"] == 0
        assert payload["ok"] is True
        assert set(payload["checks"]) == {
            "convergence",
            "monotone_epoch_lsn",
            "acked_write_durability",
            "no_split_brain",
            "bounded_staleness",
            "prefix_consistency",
        }
