"""Fault injection: deterministic schedules, structured NetworkError
codes, the simulated clock, and the unified DistError hierarchy."""

import pytest

from repro.dist import (
    DistError,
    FaultInjector,
    FaultPlan,
    LocatorError,
    NetworkError,
    ReferralError,
    ReplicationError,
    ServerLocator,
    SimulatedNetwork,
)
from repro.obs.metrics import MetricsRegistry


class TestErrorHierarchy:
    def test_all_dist_errors_share_the_base_and_carry_codes(self):
        for cls in (NetworkError, ReplicationError, ReferralError, LocatorError):
            assert issubclass(cls, DistError)
            error = cls("boom")
            assert error.code == DistError.OTHER

    def test_locator_error_is_still_a_lookup_error(self):
        locator = ServerLocator()
        locator.register("dc=com", "top")
        with pytest.raises(LookupError) as caught:
            locator.locate("dc=org")
        assert caught.value.code == LocatorError.NO_OWNER

    def test_network_error_fields(self):
        error = NetworkError("lost", code=NetworkError.DROPPED, server="s1")
        assert error.code == "dropped"
        assert error.server == "s1"


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_s=-1)

    def test_windows(self):
        plan = FaultPlan().crash("a", 1.0, 2.0).partition("a", "b", 0.0, 5.0)
        assert plan.crashed("a", 1.5)
        assert not plan.crashed("a", 2.0)  # end-exclusive
        assert not plan.crashed("b", 1.5)
        assert plan.partitioned("a", "b", 0.0)
        assert plan.partitioned("b", "a", 4.9)  # symmetric
        assert not plan.partitioned("a", "b", 5.0)


class TestFaultInjector:
    def test_default_plan_matches_plain_network(self):
        plain = SimulatedNetwork(keep_log=True)
        injected = FaultInjector(keep_log=True, metrics=MetricsRegistry())
        for network in (plain, injected):
            network.send("a", "b", "request")
            network.send("b", "a", "result", entry_count=3)
        assert injected.messages == plain.messages
        assert injected.entries_shipped == plain.entries_shipped
        assert injected.log == plain.log
        assert injected.fault_count() == 0

    def test_seeded_drop_schedule_replays_identically(self):
        def run():
            injector = FaultInjector(
                FaultPlan(seed=42, drop_rate=0.3), metrics=MetricsRegistry()
            )
            outcomes = []
            for index in range(50):
                try:
                    injector.send("a", "b", "m%d" % index)
                    outcomes.append("ok")
                except NetworkError as exc:
                    outcomes.append(exc.code)
            return outcomes

        first, second = run(), run()
        assert first == second
        assert "dropped" in first and "ok" in first

    def test_scripted_drop_by_index(self):
        injector = FaultInjector(
            FaultPlan().drop_message(0, 2), metrics=MetricsRegistry()
        )
        with pytest.raises(NetworkError) as caught:
            injector.send("a", "b", "request")
        assert caught.value.code == NetworkError.DROPPED
        injector.send("a", "b", "request")  # index 1 delivers
        with pytest.raises(NetworkError):
            injector.send("a", "b", "request")  # index 2 drops
        assert injector.messages == 1
        assert injector.attempts == 3
        assert injector.faults == {"dropped": 2}

    def test_crash_window_faults_both_directions(self):
        plan = FaultPlan().crash("s1", 0.0, 10.0)
        injector = FaultInjector(plan, metrics=MetricsRegistry())
        for source, destination in (("coord", "s1"), ("s1", "coord")):
            with pytest.raises(NetworkError) as caught:
                injector.send(source, destination, "request")
            assert caught.value.code == NetworkError.SERVER_DOWN
            assert caught.value.server == "s1"
        injector.sleep(10.0)
        injector.send("coord", "s1", "request")  # window over
        assert injector.messages == 1

    def test_partition_faults_the_pair_only(self):
        plan = FaultPlan().partition("a", "b")
        injector = FaultInjector(plan, metrics=MetricsRegistry())
        with pytest.raises(NetworkError) as caught:
            injector.send("a", "b", "request")
        assert caught.value.code == NetworkError.PARTITIONED
        injector.send("a", "c", "request")
        injector.send("c", "b", "request")
        assert injector.messages == 2

    def test_latency_advances_clock_and_timeouts(self):
        injector = FaultInjector(
            FaultPlan(latency_s=0.5), metrics=MetricsRegistry()
        )
        injector.send("a", "b", "request")
        assert injector.now == pytest.approx(0.5)
        timed = FaultInjector(
            FaultPlan(latency_s=0.5, timeout_s=0.1), metrics=MetricsRegistry()
        )
        with pytest.raises(NetworkError) as caught:
            timed.send("a", "b", "request")
        assert caught.value.code == NetworkError.TIMEOUT

    def test_faults_land_in_metrics(self):
        registry = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan().drop_message(0), metrics=registry
        )
        with pytest.raises(NetworkError):
            injector.send("a", "b", "request")
        counter = registry.get("repro_net_faults_total")
        assert counter.value(code="dropped") == 1

    def test_reset_restores_the_schedule(self):
        injector = FaultInjector(
            FaultPlan(seed=3, drop_rate=0.5, latency_s=0.1),
            metrics=MetricsRegistry(),
        )
        first = []
        for _ in range(20):
            try:
                injector.send("a", "b", "m")
                first.append("ok")
            except NetworkError:
                first.append("drop")
        injector.reset()
        assert injector.now == 0.0 and injector.attempts == 0
        assert injector.faults == {} and injector.messages == 0
        second = []
        for _ in range(20):
            try:
                injector.send("a", "b", "m")
                second.append("ok")
            except NetworkError:
                second.append("drop")
        assert first == second
