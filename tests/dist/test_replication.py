"""Replication and failover (footnote 4 of the paper)."""

import pytest

from repro.dist.network import SimulatedNetwork
from repro.dist.replication import AvailabilityRouter, ReplicatedContext, ReplicationError
from repro.query.parser import parse_query
from repro.workload import synthetic_schema


@pytest.fixture
def context():
    network = SimulatedNetwork()
    replicated = ReplicatedContext(
        "name=r", synthetic_schema(), secondaries=2, network=network
    )
    replicated.add("name=r", ["node"], name="r", kind="alpha")
    for index in range(6):
        replicated.add(
            "name=e%d, name=r" % index,
            ["node"],
            name="e%d" % index,
            kind="alpha" if index % 2 == 0 else "beta",
        )
    return network, replicated


QUERY = parse_query("(name=r ? sub ? kind=alpha)")


class TestSync:
    def test_changelog_accumulates(self, context):
        _network, replicated = context
        assert replicated.changelog_length() == 7
        assert replicated.lag("secondary0") == 7

    def test_sync_ships_counted_batches(self, context):
        network, replicated = context
        shipped = replicated.sync()
        assert shipped == {"secondary0": 7, "secondary1": 7}
        assert network.messages == 2
        assert network.entries_shipped == 14
        assert replicated.lag("secondary0") == 0
        # A second sync ships nothing.
        assert replicated.sync() == {"secondary0": 0, "secondary1": 0}
        assert network.messages == 2

    def test_incremental_sync(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=late, name=r", ["node"], name="late")
        assert replicated.lag("secondary0") == 1
        assert replicated.sync()["secondary0"] == 1


class TestFailover:
    def test_primary_preferred(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        entries = router.evaluate(QUERY)
        assert router.served_by == ["primary"]
        assert len(entries) == 4  # root + 3 alpha children

    def test_failover_to_synced_secondary(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        primary_answer = router.evaluate(QUERY)
        router.mark_down("primary")
        secondary_answer = router.evaluate(QUERY)
        assert router.served_by[-1] == "secondary0"
        assert [e.dn for e in secondary_answer] == [e.dn for e in primary_answer]

    def test_stale_secondary_skipped(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=fresh, name=r", ["node"], name="fresh", kind="alpha")
        router = AvailabilityRouter(replicated)
        router.mark_down("primary")
        with pytest.raises(ReplicationError):
            router.evaluate(QUERY)  # both secondaries lag
        replicated.sync()
        entries = router.evaluate(QUERY)
        assert any(e.first("name") == "fresh" for e in entries)

    def test_mark_up_restores(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        router.mark_down("primary")
        router.evaluate(QUERY)
        router.mark_up("primary")
        router.evaluate(QUERY)
        assert router.served_by[-1] == "primary"

    def test_all_down(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        for name in ("primary", "secondary0", "secondary1"):
            router.mark_down(name)
        with pytest.raises(ReplicationError) as caught:
            router.evaluate(QUERY)
        assert caught.value.code == ReplicationError.NO_REPLICA


class TestBoundedStaleness:
    def test_max_lag_admits_slightly_stale_secondaries(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=fresh, name=r", ["node"], name="fresh", kind="alpha")
        router = AvailabilityRouter(replicated, max_lag=1)
        router.mark_down("primary")
        entries = router.evaluate(QUERY)  # one record behind: acceptable
        assert router.served_by == ["secondary0"]
        assert not any(e.first("name") == "fresh" for e in entries)

    def test_per_call_override(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=fresh, name=r", ["node"], name="fresh", kind="alpha")
        router = AvailabilityRouter(replicated)  # strict by default
        router.mark_down("primary")
        with pytest.raises(ReplicationError):
            router.evaluate(QUERY)
        assert router.evaluate(QUERY, max_lag=1) is not None

    def test_validation(self, context):
        _network, replicated = context
        with pytest.raises(ValueError):
            AvailabilityRouter(replicated, max_lag=-1)


class TestDecisionTrail:
    def test_trail_records_why_each_candidate_was_skipped(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=fresh, name=r", ["node"], name="fresh", kind="alpha")
        replicated.sync()  # secondary0 catches up...
        replicated.add("name=later, name=r", ["node"], name="later")
        router = AvailabilityRouter(replicated)
        router.mark_down("primary")
        with pytest.raises(ReplicationError):
            router.evaluate(QUERY)
        assert router.decisions[-1] == [
            ("primary", "down"),
            ("secondary0", "lag=1"),
            ("secondary1", "lag=1"),
        ]

    def test_trail_ends_with_the_server_that_served(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        router.mark_down("primary")
        router.evaluate(QUERY)
        assert router.decisions == [
            [("primary", "down"), ("secondary0", "served")]
        ]
