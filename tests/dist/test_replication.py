"""Replication and failover (footnote 4 of the paper)."""

import pytest

from repro.dist.network import SimulatedNetwork
from repro.dist.replication import AvailabilityRouter, ReplicatedContext, ReplicationError
from repro.obs.metrics import MetricsRegistry
from repro.query.parser import parse_query
from repro.workload import synthetic_schema


@pytest.fixture
def context():
    network = SimulatedNetwork()
    replicated = ReplicatedContext(
        "name=r", synthetic_schema(), secondaries=2, network=network,
        metrics=MetricsRegistry(),
    )
    replicated.add("name=r", ["node"], name="r", kind="alpha")
    for index in range(6):
        replicated.add(
            "name=e%d, name=r" % index,
            ["node"],
            name="e%d" % index,
            kind="alpha" if index % 2 == 0 else "beta",
        )
    return network, replicated


QUERY = parse_query("(name=r ? sub ? kind=alpha)")


class TestSync:
    def test_changelog_accumulates(self, context):
        _network, replicated = context
        assert replicated.changelog_length() == 7
        assert replicated.lag("secondary0") == 7

    def test_sync_ships_counted_batches(self, context):
        network, replicated = context
        shipped = replicated.sync()
        assert shipped == {"secondary0": 7, "secondary1": 7}
        assert network.messages == 2
        assert network.entries_shipped == 14
        assert replicated.lag("secondary0") == 0
        # A second sync ships nothing.
        assert replicated.sync() == {"secondary0": 0, "secondary1": 0}
        assert network.messages == 2

    def test_incremental_sync(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=late, name=r", ["node"], name="late")
        assert replicated.lag("secondary0") == 1
        assert replicated.sync()["secondary0"] == 1


class TestFailover:
    def test_primary_preferred(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        entries = router.evaluate(QUERY)
        assert router.served_by == ["primary"]
        assert len(entries) == 4  # root + 3 alpha children

    def test_failover_to_synced_secondary(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        primary_answer = router.evaluate(QUERY)
        router.mark_down("primary")
        secondary_answer = router.evaluate(QUERY)
        assert router.served_by[-1] == "secondary0"
        assert [e.dn for e in secondary_answer] == [e.dn for e in primary_answer]

    def test_stale_secondary_skipped(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=fresh, name=r", ["node"], name="fresh", kind="alpha")
        router = AvailabilityRouter(replicated)
        router.mark_down("primary")
        with pytest.raises(ReplicationError):
            router.evaluate(QUERY)  # both secondaries lag
        replicated.sync()
        entries = router.evaluate(QUERY)
        assert any(e.first("name") == "fresh" for e in entries)

    def test_mark_up_restores(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        router.mark_down("primary")
        router.evaluate(QUERY)
        router.mark_up("primary")
        router.evaluate(QUERY)
        assert router.served_by[-1] == "primary"

    def test_all_down(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        for name in ("primary", "secondary0", "secondary1"):
            router.mark_down(name)
        with pytest.raises(ReplicationError) as caught:
            router.evaluate(QUERY)
        assert caught.value.code == ReplicationError.NO_REPLICA


class TestBoundedStaleness:
    def test_max_lag_admits_slightly_stale_secondaries(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=fresh, name=r", ["node"], name="fresh", kind="alpha")
        router = AvailabilityRouter(replicated, max_lag=1)
        router.mark_down("primary")
        entries = router.evaluate(QUERY)  # one record behind: acceptable
        assert router.served_by == ["secondary0"]
        assert not any(e.first("name") == "fresh" for e in entries)

    def test_per_call_override(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=fresh, name=r", ["node"], name="fresh", kind="alpha")
        router = AvailabilityRouter(replicated)  # strict by default
        router.mark_down("primary")
        with pytest.raises(ReplicationError):
            router.evaluate(QUERY)
        assert router.evaluate(QUERY, max_lag=1) is not None

    def test_validation(self, context):
        _network, replicated = context
        with pytest.raises(ValueError):
            AvailabilityRouter(replicated, max_lag=-1)


class TestDecisionTrail:
    def test_trail_records_why_each_candidate_was_skipped(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=fresh, name=r", ["node"], name="fresh", kind="alpha")
        replicated.sync()  # secondary0 catches up...
        replicated.add("name=later, name=r", ["node"], name="later")
        router = AvailabilityRouter(replicated)
        router.mark_down("primary")
        with pytest.raises(ReplicationError):
            router.evaluate(QUERY)
        assert router.decisions[-1] == [
            ("primary", "down"),
            ("secondary0", "lag=1"),
            ("secondary1", "lag=1"),
        ]

    def test_trail_ends_with_the_server_that_served(self, context):
        _network, replicated = context
        replicated.sync()
        router = AvailabilityRouter(replicated)
        router.mark_down("primary")
        router.evaluate(QUERY)
        assert router.decisions == [
            [("primary", "down"), ("secondary0", "served")]
        ]


def _fill(replicated, count=5):
    replicated.add("name=r", ["node"], name="r", kind="alpha")
    for index in range(count):
        replicated.add("name=e%d, name=r" % index, ["node"], name="e%d" % index)


class TestTypedShipping:
    def test_changelog_holds_lsn_stamped_change_records(self, context):
        _network, replicated = context
        records = replicated._changelog
        assert [r.lsn for r in records] == list(range(1, 8))
        assert all(r.kind == "add" for r in records)

    def test_replicas_apply_through_the_recovery_replay_path(self, context):
        _network, replicated = context
        replicated.sync()
        secondary = replicated.node("secondary0")
        assert secondary.applied_lsn == 7
        assert [r.lsn for r in secondary.applied] == list(range(1, 8))
        # Re-shipping the same records is an idempotent no-op (dup lsns
        # are skipped by apply_records, exactly like crash recovery).
        assert secondary.receive(replicated.epoch, replicated.primary.applied) == []

    def test_deletes_and_modifies_ship_as_post_images(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.modify("name=e0, name=r", replace={"kind": ["gamma"]})
        replicated.delete("name=e1, name=r")
        replicated.sync()
        secondary = replicated.node("secondary0").directory
        assert secondary.lookup("name=e0, name=r").first("kind") == "gamma"
        assert secondary.lookup("name=e1, name=r") is None


class TestChangelogTruncation:
    def test_fully_acked_prefix_is_truncated(self, context):
        _network, replicated = context
        assert replicated.changelog_length() == 7
        replicated.sync()
        assert replicated.changelog_length() == 0
        assert replicated.changelog_floor == 7

    def test_lagging_replica_pins_the_changelog(self):
        from repro.dist import FaultInjector, FaultPlan
        from repro.obs.metrics import MetricsRegistry

        plan = FaultPlan().partition("primary", "secondary1", 0.0, 1e9)
        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=2,
            network=FaultInjector(plan, metrics=MetricsRegistry()),
            metrics=MetricsRegistry(),
        )
        _fill(replicated)
        replicated.sync()
        # secondary0 acked everything, secondary1 is unreachable: with
        # ack="primary" the floor is the *minimum* acked lsn.
        assert replicated.changelog_length() == 6
        assert replicated.lag("secondary1") == 6
        assert replicated.metrics.get(
            "repro_replication_changelog_records").value() == 6

    def test_quorum_ack_truncates_at_the_quorum_floor(self):
        from repro.dist import FaultInjector, FaultPlan
        from repro.obs.metrics import MetricsRegistry

        plan = FaultPlan().partition("primary", "secondary1", 0.0, 1e9)
        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=2, ack="quorum",
            network=FaultInjector(plan, metrics=MetricsRegistry()),
            metrics=MetricsRegistry(),
        )
        _fill(replicated)
        # Quorum = 2 of 3 = primary + secondary0; the unreachable replica
        # does not pin the changelog.
        assert replicated.changelog_length() == 0
        assert replicated.changelog_floor == 6

    def test_replica_behind_the_floor_catches_up_by_resync(self):
        from repro.dist import FaultInjector, FaultPlan
        from repro.obs.metrics import MetricsRegistry

        plan = FaultPlan().partition("primary", "secondary1", 0.0, 5.0)
        network = FaultInjector(plan, metrics=MetricsRegistry())
        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=2, ack="quorum",
            network=network, metrics=MetricsRegistry(),
        )
        _fill(replicated)
        assert replicated.changelog_floor == 6  # secondary1's records are gone
        network.sleep(10.0)  # heal the partition
        shipped = replicated.sync()
        assert shipped["secondary1"] == 6
        assert replicated.resyncs == 1
        assert replicated.node("secondary1").applied_lsn == 6
        assert replicated.lag("secondary1") == 0


class TestAckLevels:
    def test_quorum_write_ships_synchronously(self):
        from repro.dist import SimulatedNetwork
        from repro.obs.metrics import MetricsRegistry

        network = SimulatedNetwork()
        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=2, ack="quorum",
            network=network, metrics=MetricsRegistry(),
        )
        replicated.add("name=r", ["node"], name="r")
        assert replicated.lag("secondary0") == 0 or replicated.lag("secondary1") == 0
        assert network.messages >= 1  # the write itself shipped

    def test_unreachable_quorum_raises_ack_failed(self):
        from repro.dist import FaultInjector, FaultPlan
        from repro.obs.metrics import MetricsRegistry

        plan = (FaultPlan()
                .partition("primary", "secondary0", 0.0, 1e9)
                .partition("primary", "secondary1", 0.0, 1e9))
        metrics = MetricsRegistry()
        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=2, ack="quorum",
            network=FaultInjector(plan, metrics=metrics), metrics=metrics,
        )
        with pytest.raises(ReplicationError) as caught:
            replicated.add("name=r", ["node"], name="r")
        assert caught.value.code == ReplicationError.ACK_FAILED
        # The write committed locally -- it is just not acknowledged.
        assert replicated.primary.applied_lsn == 1
        assert metrics.get("repro_replication_ack_failures_total").value() == 1

    def test_ack_level_is_validated(self):
        with pytest.raises(ValueError):
            ReplicatedContext("name=r", synthetic_schema(), ack="eventual")


class TestEpochFencing:
    def test_promotion_bumps_the_epoch_and_deposes_the_primary(self, context):
        _network, replicated = context
        replicated.sync()
        new_primary = replicated.promote()
        assert new_primary == "secondary1"  # most caught-up, name tiebreak
        assert replicated.epoch == 2
        assert replicated.primary_name == new_primary
        assert replicated.node("primary").role == "deposed"

    def test_deposed_primary_writes_are_fenced(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.promote()
        with pytest.raises(ReplicationError) as caught:
            replicated.write_via("primary", "add", "name=x, name=r", ["node"],
                                 {"name": ["x"]})
        assert caught.value.code == ReplicationError.FENCED
        assert replicated.metrics.get(
            "repro_replication_fenced_total").value() == 1

    def test_deposed_primary_ships_are_fenced(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.promote()
        with pytest.raises(ReplicationError) as caught:
            replicated.ship_via("primary")
        assert caught.value.code == ReplicationError.FENCED

    def test_receive_side_fence_rejects_lower_epochs(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.promote()
        replicated.add("name=x, name=r", ["node"], name="x")
        replicated.sync()  # replicas now know epoch 2
        stale_batch = replicated.primary.applied[-1:]
        with pytest.raises(ReplicationError) as caught:
            replicated.node("secondary0").receive(1, stale_batch)
        assert caught.value.code == ReplicationError.FENCED

    def test_plain_secondary_write_is_not_primary(self, context):
        _network, replicated = context
        with pytest.raises(ReplicationError) as caught:
            replicated.write_via("secondary0", "add", "name=x, name=r",
                                 ["node"], {"name": ["x"]})
        assert caught.value.code == ReplicationError.NOT_PRIMARY

    def test_writes_on_the_new_lineage_keep_flowing(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.promote()
        replicated.add("name=x, name=r", ["node"], name="x")
        replicated.sync()
        for name in ("primary", "secondary0"):
            node = replicated.node(name)
            assert node.directory.lookup("name=x, name=r") is not None
            assert node.epoch == 2
            assert node.role == "secondary"  # deposed rejoined on receive


class TestPromotion:
    def test_picks_the_most_caught_up_live_replica(self):
        from repro.dist import FaultInjector, FaultPlan
        from repro.obs.metrics import MetricsRegistry

        plan = FaultPlan().partition("primary", "secondary1", 0.0, 1e9)
        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=2,
            network=FaultInjector(plan, metrics=MetricsRegistry()),
            metrics=MetricsRegistry(),
        )
        _fill(replicated)
        replicated.sync()  # secondary0 at lsn 6, secondary1 unreachable at 0
        assert replicated.promote(exclude=()) == "secondary0"

    def test_excluded_and_diverged_nodes_are_not_candidates(self, context):
        _network, replicated = context
        # Nothing shipped: promoting loses the whole unshipped tail, and
        # the old primary (lsn 7 > fork 0) is flagged diverged.
        replicated.promote()
        old = replicated.node("primary")
        assert old.needs_resync
        with pytest.raises(ReplicationError) as caught:
            replicated.promote(name="primary")
        assert caught.value.code == ReplicationError.NO_CANDIDATE

    def test_no_candidate_when_everything_is_excluded(self, context):
        _network, replicated = context
        with pytest.raises(ReplicationError) as caught:
            replicated.promote(exclude={"secondary0", "secondary1"})
        assert caught.value.code == ReplicationError.NO_CANDIDATE

    def test_diverged_old_primary_resyncs_onto_the_new_lineage(self, context):
        _network, replicated = context
        replicated.sync()
        replicated.add("name=tail, name=r", ["node"], name="tail")  # unshipped
        replicated.promote()  # fork at lsn 7: the tail write is disowned
        assert replicated.node("primary").needs_resync
        replicated.add("name=x, name=r", ["node"], name="x")
        replicated.sync()
        old = replicated.node("primary")
        assert not old.needs_resync
        assert old.directory.lookup("name=tail, name=r") is None  # disowned
        assert old.directory.lookup("name=x, name=r") is not None
        assert replicated.resyncs == 1


class TestReplicationStatus:
    def test_status_dict_shape(self, context):
        _network, replicated = context
        replicated.sync()
        status = replicated.replication_status()
        assert status["epoch"] == 1
        assert status["primary"] == "primary"
        assert status["head_lsn"] == 7
        assert set(status["replicas"]) == {"primary", "secondary0", "secondary1"}
        replica = status["replicas"]["secondary0"]
        assert replica["acked_lsn"] == 7 and replica["lag"] == 0

    def test_gauges_track_epoch_and_lag(self, context):
        _network, replicated = context
        registry = replicated.metrics
        assert registry.get("repro_replication_epoch").value() == 1
        assert registry.get("repro_replication_lag_records").value(
            replica="secondary0") == 7
        replicated.sync()
        assert registry.get("repro_replication_lag_records").value(
            replica="secondary0") == 0
        assert registry.get("repro_replication_shipped_records_total").value() == 14


class TestDurablePrimary:
    def test_resync_uses_checkpoint_plus_wal_suffix(self, tmp_path):
        from repro.dist import FaultInjector, FaultPlan
        from repro.obs.metrics import MetricsRegistry

        plan = FaultPlan().partition("primary", "secondary0", 0.0, 5.0)
        network = FaultInjector(plan, metrics=MetricsRegistry())
        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=1, network=network,
            durable_dir=str(tmp_path / "primary"), metrics=MetricsRegistry(),
        )
        replicated.add("name=r", ["node"], name="r")
        replicated.primary.directory.checkpoint()  # checkpoint at lsn 1
        for index in range(3):
            replicated.add("name=e%d, name=r" % index, ["node"],
                           name="e%d" % index)
        replicated.sync()  # unreachable: nothing ships
        # Force the replica behind the floor so the next round resyncs.
        replicated.changelog_floor = 4
        replicated._changelog = []
        network.sleep(10.0)
        replicated.sync()
        assert replicated.resyncs == 1
        secondary = replicated.node("secondary0")
        assert secondary.applied_lsn == 4
        # The suffix really came from the WAL (snapshot at the checkpoint,
        # 3 records shipped on top).
        assert [r.lsn for r in secondary.applied] == [2, 3, 4]

    def test_primary_crash_recovery_rejoins_the_group(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.txn.wal import CrashPlan, SimulatedCrash

        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=1,
            network=SimulatedNetwork(),
            durable_dir=str(tmp_path / "primary"), metrics=MetricsRegistry(),
        )
        replicated.add("name=r", ["node"], name="r")
        replicated.sync()
        wal = replicated.primary.directory.wal
        wal.crash_plan = CrashPlan(crash_at_flush=wal.flushes, torn_bytes=7)
        with pytest.raises(SimulatedCrash):
            replicated.add("name=lost, name=r", ["node"], name="lost")
        node = replicated.reopen_primary()
        # The torn write was never acknowledged; the acked one survived.
        assert node.applied_lsn == 1
        assert node.directory.lookup("name=r") is not None
        assert node.directory.lookup("name=lost, name=r") is None
        # The group keeps working on the recovered lineage.
        replicated.add("name=next, name=r", ["node"], name="next")
        replicated.sync()
        assert replicated.node("secondary0").directory.lookup(
            "name=next, name=r") is not None
