"""Retry, circuit breaking and the degradation ladder, unit level and
wired through the federation against injected faults."""

import pytest

from repro.dist import (
    AvailabilityRouter,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FederatedDirectory,
    NetworkError,
    ReplicatedContext,
    ResiliencePolicy,
    RetryPolicy,
    SimulatedNetwork,
    StaleStore,
)
from repro.obs.metrics import MetricsRegistry
from repro.query.semantics import evaluate
from repro.workload import random_instance


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_grows_exponentially_with_bounded_jitter(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, jitter=0.5, seed=1)
        waits = [policy.backoff(failures) for failures in (1, 2, 3)]
        for index, wait in enumerate(waits):
            base = 0.1 * 2.0 ** index
            assert base <= wait <= base * 1.5

    def test_jitter_is_seeded(self):
        first = [RetryPolicy(seed=9).backoff(n) for n in (1, 2, 3)]
        second = [RetryPolicy(seed=9).backoff(n) for n in (1, 2, 3)]
        assert first == second

    def test_should_retry_bounds_attempts_and_deadline(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1, now=0.0, deadline=None)
        assert policy.should_retry(2, now=0.0, deadline=None)
        assert not policy.should_retry(3, now=0.0, deadline=None)
        assert policy.should_retry(1, now=4.9, deadline=5.0)
        assert not policy.should_retry(1, now=5.0, deadline=5.0)


class TestCircuitBreaker:
    def test_full_transition_cycle(self):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout_s=10.0, name="s1", metrics=registry
        )
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(1.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(5.0)  # still inside the reset timeout
        assert breaker.allow(11.0)  # half-open probe admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(11.0)  # only one probe
        breaker.record_success(11.5)
        assert breaker.state == CircuitBreaker.CLOSED
        assert [(f, t) for _, f, t in breaker.transitions] == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
        ]
        assert breaker.open_count() == 1
        counter = registry.get("repro_breaker_transitions_total")
        assert counter.value(server="s1", to="open") == 1
        assert counter.value(server="s1", to="closed") == 1

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(2.0)  # half-open
        breaker.record_failure(2.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.open_count() == 2

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED


class TestStaleStore:
    def test_lru_eviction_and_served_count(self):
        store = StaleStore(max_keys=2)
        store.put("a", [1])
        store.put("b", [2])
        assert store.get("a") == (1,)  # refreshes a
        store.put("c", [3])  # evicts b
        assert store.get("b") is None
        assert store.get("c") == (3,)
        assert len(store) == 2
        assert store.served == 2


class TestResiliencePolicy:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(mode="yolo")

    def test_enable_with_kwargs_and_policy_are_exclusive(self):
        fed = _make_fed()[1]
        with pytest.raises(ValueError):
            fed.enable_resilience(ResiliencePolicy(), mode="strict")


def _make_fed(plan=None, seed=23, size=80, leaf_cache_bytes=0):
    """Two-server federation over an injected network; returns
    (instance, fed, network, remote_query) where remote_query targets
    server1's root from server0."""
    registry = MetricsRegistry()
    instance = random_instance(seed, size=size, forest_roots=2)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
    network = FaultInjector(plan or FaultPlan(), metrics=registry)
    fed = FederatedDirectory.partition(
        instance,
        assignments,
        page_size=8,
        network=network,
        leaf_cache_bytes=leaf_cache_bytes,
        metrics=registry,
    )
    remote_query = "(%s ? sub ? objectClass=*)" % roots[1]
    return instance, fed, network, remote_query


def _oracle(instance, query):
    from repro.query.parser import parse_query

    return [str(e.dn) for e in evaluate(parse_query(query), instance)]


class TestFederatedRetry:
    def test_scripted_drop_is_retried_transparently(self):
        instance, fed, network, query = _make_fed(FaultPlan().drop_message(0))
        fed.enable_resilience(retry=RetryPolicy(max_attempts=3, backoff_s=0.01))
        result = fed.query("server0", query)
        assert result.dns() == _oracle(instance, query)
        assert result.retries == 1
        assert not result.partial and not result.warnings
        assert network.faults == {"dropped": 1}
        assert fed.metrics.get("repro_fed_retries_total").value(server="server1") == 1
        assert (
            fed.metrics.get("repro_fed_remote_failures_total").value(
                server="server1", code="dropped"
            )
            == 1
        )

    def test_backoff_advances_the_simulated_clock(self):
        _, fed, network, query = _make_fed(FaultPlan().drop_message(0))
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.25, jitter=0.0)
        )
        fed.query("server0", query)
        assert network.now == pytest.approx(0.25)

    def test_deadline_stops_retrying_early(self):
        plan = FaultPlan(latency_s=1.0).crash("server1", 0.0, 1e9)
        instance, fed, network, query = _make_fed(plan)
        fed.enable_resilience(
            retry=RetryPolicy(
                max_attempts=50, backoff_s=1.0, jitter=0.0, deadline_s=2.5
            ),
            breaker_failure_threshold=100,
        )
        result = fed.query("server0", query)
        assert result.partial
        # Attempts at t=0, 1, 2; the t=3 attempt would breach the 2.5s
        # deadline, so exactly two retries happened.
        assert result.retries == 2

    def test_partial_result_and_warnings_when_owner_is_down(self):
        plan = FaultPlan().crash("server1", 0.0, 1e9)
        instance, fed, network, query = _make_fed(plan)
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01), serve_stale=False
        )
        result = fed.query("server0", query)
        assert result.partial
        assert result.missing_servers == ["server1"]
        assert any("serverDown" in warning for warning in result.warnings)
        assert result.dns() == []  # nothing under server1's root is reachable
        assert (
            fed.metrics.get("repro_fed_degraded_total").value(mode="partial") == 1
        )

    def test_strict_mode_raises_after_exhaustion(self):
        plan = FaultPlan().crash("server1", 0.0, 1e9)
        _, fed, network, query = _make_fed(plan)
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01),
            mode="strict",
            serve_stale=False,
        )
        with pytest.raises(NetworkError) as caught:
            fed.query("server0", query)
        assert caught.value.code == NetworkError.SERVER_DOWN

    def test_breaker_short_circuits_a_down_server(self):
        plan = FaultPlan().crash("server1", 0.0, 1e9)
        _, fed, network, query = _make_fed(plan)
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01),
            breaker_failure_threshold=2,
            breaker_reset_s=1e6,
            serve_stale=False,
        )
        first = fed.query("server0", query)
        assert first.partial
        assert fed.breakers["server1"].state == CircuitBreaker.OPEN
        attempts_after_first = network.attempts
        second = fed.query("server0", query)
        assert second.partial
        # The open breaker means the second query never touched the network.
        assert network.attempts == attempts_after_first
        assert (
            fed.metrics.get("repro_fed_remote_failures_total").value(
                server="server1", code=NetworkError.BREAKER_OPEN
            )
            == 1
        )

    def test_breaker_half_open_recovery(self):
        plan = FaultPlan().crash("server1", 0.0, 0.5)
        instance, fed, network, query = _make_fed(plan)
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=1),
            breaker_failure_threshold=1,
            breaker_reset_s=1.0,
            serve_stale=False,
        )
        assert fed.query("server0", query).partial  # opens the breaker
        network.sleep(2.0)  # past the reset timeout and the crash window
        recovered = fed.query("server0", query)
        assert not recovered.partial
        assert recovered.dns() == _oracle(instance, query)
        assert fed.breakers["server1"].state == CircuitBreaker.CLOSED


class TestServeStale:
    def test_last_known_good_is_served_with_a_warning(self):
        instance, fed, network, query = _make_fed()
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01), serve_stale=True
        )
        fresh = fed.query("server0", query)
        expected = _oracle(instance, query)
        assert fresh.dns() == expected and not fresh.warnings
        network.plan.crash("server1", network.now, 1e9)
        stale = fed.query("server0", query)
        assert stale.dns() == expected
        assert not stale.partial  # degraded, but not missing data
        assert any("last known good" in warning for warning in stale.warnings)
        assert fed._stale.served == 1
        assert fed.metrics.get("repro_fed_degraded_total").value(mode="stale") == 1

    def test_stale_serves_survive_cache_invalidation(self):
        """The leaf cache is dropped for correctness; the stale store is
        the last-known-good fallback and deliberately is not."""
        instance, fed, network, query = _make_fed(leaf_cache_bytes=64 * 1024)
        fed.enable_resilience(retry=RetryPolicy(max_attempts=2, backoff_s=0.01))
        expected = fed.query("server0", query).dns()
        fed.refresh_server("server1", [])  # replication refresh drops the cache
        network.plan.crash("server1", network.now, 1e9)
        stale = fed.query("server0", query)
        assert stale.dns() == expected
        assert any("last known good" in warning for warning in stale.warnings)

    def test_degraded_entries_are_not_readmitted_to_the_cache(self):
        instance, fed, network, query = _make_fed(leaf_cache_bytes=64 * 1024)
        fed.enable_resilience(retry=RetryPolicy(max_attempts=2, backoff_s=0.01))
        fed.query("server0", query)
        fed.leaf_cache.invalidate_tag("server1")
        network.plan.crash("server1", network.now, 1e9)
        fed.query("server0", query)  # served stale
        # A cached copy would now answer without warnings -- wrong, the
        # data is degraded.  The stale rung must keep warning.
        again = fed.query("server0", query)
        assert any("last known good" in warning for warning in again.warnings)


class TestReplicaFailover:
    def _attach_replica(self, instance, fed, max_lag=0):
        root = fed.servers["server1"].contexts[0]
        replicated = ReplicatedContext(
            root, instance.schema, secondaries=1, network=SimulatedNetwork()
        )
        for entry in instance:
            if root.is_prefix_of(entry.dn):
                replicated.add_entry(entry)
        replicated.sync()
        router = AvailabilityRouter(replicated)
        fed.attach_replica("server1", router)
        return replicated, router

    def test_failover_serves_full_results_with_a_warning(self):
        plan = FaultPlan().crash("server1", 0.0, 1e9)
        instance, fed, network, query = _make_fed(plan)
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01), serve_stale=False
        )
        replicated, router = self._attach_replica(instance, fed)
        result = fed.query("server0", query)
        assert not result.partial
        assert result.dns() == _oracle(instance, query)
        assert any("served by replica primary" in w for w in result.warnings)
        assert router.served_by == ["primary"]
        assert (
            fed.metrics.get("repro_fed_degraded_total").value(mode="replica") == 1
        )

    def test_secondary_takes_over_when_the_replica_primary_is_down(self):
        plan = FaultPlan().crash("server1", 0.0, 1e9)
        instance, fed, network, query = _make_fed(plan)
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01), serve_stale=False
        )
        replicated, router = self._attach_replica(instance, fed)
        router.mark_down("primary")
        result = fed.query("server0", query)
        assert not result.partial
        assert result.dns() == _oracle(instance, query)
        assert router.served_by == ["secondary0"]

    def test_exhausted_replicas_fall_through_to_partial(self):
        plan = FaultPlan().crash("server1", 0.0, 1e9)
        instance, fed, network, query = _make_fed(plan)
        fed.enable_resilience(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01), serve_stale=False
        )
        replicated, router = self._attach_replica(instance, fed)
        router.mark_down("primary")
        router.mark_down("secondary0")
        result = fed.query("server0", query)
        assert result.partial and result.missing_servers == ["server1"]
        assert any("replica failover failed" in w for w in result.warnings)
        assert any("noLiveReplica" in w for w in result.warnings)


class TestZeroOverheadDefault:
    """With no faults planned, the chaos toolkit must be invisible:
    byte-identical results, message counts and I/O."""

    @pytest.mark.parametrize("seed", range(4))
    def test_injected_network_matches_plain(self, seed):
        from repro.workload import RandomQueries

        instance = random_instance(37, size=120, forest_roots=2)
        roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
        assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}

        plain_fed = FederatedDirectory.partition(
            instance, assignments, page_size=8,
            network=SimulatedNetwork(), metrics=MetricsRegistry(),
        )
        chaos_fed = FederatedDirectory.partition(
            instance, assignments, page_size=8,
            network=FaultInjector(metrics=MetricsRegistry()),
            metrics=MetricsRegistry(),
        )
        chaos_fed.enable_resilience()  # armed, but nothing ever fails

        queries = [RandomQueries(instance, seed=seed).l0() for _ in range(6)]
        for query in queries:
            baseline = plain_fed.query("server0", query)
            chaotic = chaos_fed.query("server0", query)
            assert chaotic.dns() == baseline.dns(), str(query)
            assert chaotic.messages == baseline.messages
            assert chaotic.entries_shipped == baseline.entries_shipped
            assert (chaotic.io.reads, chaotic.io.writes) == (
                baseline.io.reads, baseline.io.writes,
            )
            assert chaotic.retries == 0
            assert not chaotic.partial and not chaotic.warnings
        assert chaos_fed.network.fault_count() == 0
