"""The coordinator-side sublist cache: remote atomic results are reused
across queries, and invalidation is per-subtree and per-server."""

import pytest

from repro.dist import FederatedDirectory
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.workload import random_instance


@pytest.fixture
def federation():
    instance = random_instance(31, size=120, forest_roots=3)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
    fed = FederatedDirectory.partition(instance, assignments, page_size=8)
    return instance, fed


def remote_query(fed):
    """A coordinator and an atomic query it must answer remotely."""
    at = "server0"
    context = fed.servers["server1"].contexts[0]
    return at, "(%s ? sub ? kind=alpha)" % context


class TestLeafCache:
    def test_repeat_query_ships_nothing(self, federation):
        instance, fed = federation
        at, text = remote_query(fed)
        first = fed.query(at, text)
        assert first.messages == 2
        second = fed.query(at, text)
        assert second.messages == 0
        assert second.dns() == first.dns()

    def test_cached_answer_is_correct(self, federation):
        instance, fed = federation
        at, text = remote_query(fed)
        fed.query(at, text)  # warm
        got = fed.query(at, text).dns()
        assert got == [str(e.dn) for e in evaluate(parse_query(text), instance)]

    def test_shared_sublist_across_composites(self, federation):
        # a composite query containing an already-cached remote atom plus a
        # purely-local atom needs no network traffic at all
        instance, fed = federation
        at, text = remote_query(fed)
        fed.query(at, text)  # warm the remote sublist
        local_context = fed.servers[at].contexts[0]
        composite = fed.query(
            at, "(| %s (%s ? sub ? name=e0))" % (text, local_context)
        )
        assert composite.messages == 0

    def test_invalidate_dn_precise(self, federation):
        instance, fed = federation
        context0 = fed.servers["server1"].contexts[0]
        context1 = fed.servers["server2"].contexts[0]
        q0 = "(%s ? sub ? kind=alpha)" % context0
        q1 = "(%s ? sub ? kind=alpha)" % context1
        fed.query("server0", q0)
        fed.query("server0", q1)
        fed.invalidate_dn(context0, subtree=True)
        assert fed.query("server0", q0).messages == 2  # re-shipped
        assert fed.query("server0", q1).messages == 0  # survived

    def test_refresh_server_drops_only_its_sublists(self, federation):
        instance, fed = federation
        context1 = fed.servers["server1"].contexts[0]
        context2 = fed.servers["server2"].contexts[0]
        q1 = "(%s ? sub ? kind=alpha)" % context1
        q2 = "(%s ? sub ? kind=alpha)" % context2
        fed.query("server0", q1)
        fed.query("server0", q2)
        entries = [e for e in instance if context1.is_prefix_of(e.dn)]
        fed.refresh_server("server1", entries)
        assert fed.query("server0", q1).messages == 2
        assert fed.query("server0", q2).messages == 0

    def test_disabled_cache_always_ships(self, federation):
        instance, _ = federation
        roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
        assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
        fed = FederatedDirectory.partition(
            instance, assignments, page_size=8, leaf_cache_bytes=0
        )
        at, text = remote_query(fed)
        assert fed.query(at, text).messages == 2
        assert fed.query(at, text).messages == 2
