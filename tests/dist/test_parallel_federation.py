"""Parallel scatter-gather (the worker-pool execution layer): a parallel
federation must be indistinguishable from the sequential one in
everything but wall time -- same entries in the same order, same network
accounting, same coordinator page I/O for atomic scatters -- and the
resilience ladder and tracer must keep working across worker threads."""

import pytest

from repro.dist import FederatedDirectory
from repro.dist.faults import FaultInjector, FaultPlan
from repro.engine import QueryEngine
from repro.obs.trace import Tracer
from repro.workload import balanced_instance

ATOMIC_SPANNING = "( ? sub ? kind=alpha)"
TREE_SPANNING = "(c ( ? sub ? kind=alpha) ( ? sub ? weight>=40))"


def _build(max_workers=1, network=None, tracer=None, leaf_cache_bytes=0):
    instance = balanced_instance(600, fanout=4, seed=22)
    root = next(iter(instance.roots())).dn
    subnets = [e.dn for e in instance if e.dn.depth() == 2][:4]
    assignments = {"hq": [root]}
    for index, subnet in enumerate(subnets):
        assignments["subnet%d" % index] = [subnet]
    federation = FederatedDirectory.partition(
        instance,
        assignments,
        page_size=16,
        network=network,
        leaf_cache_bytes=leaf_cache_bytes,
        tracer=tracer,
        max_workers=max_workers,
    )
    return instance, federation, root, subnets


@pytest.fixture(scope="module")
def oracle():
    instance, _fed, _root, _subnets = _build()
    engine = QueryEngine.from_instance(instance, page_size=16)
    return {
        query: engine.run(query).dns()
        for query in (ATOMIC_SPANNING, TREE_SPANNING)
    }


class TestDifferential:
    @pytest.mark.parametrize("query", [ATOMIC_SPANNING, TREE_SPANNING])
    def test_parallel_matches_sequential_and_centralised(self, oracle, query):
        _, sequential, _, _ = _build(max_workers=1)
        _, parallel, _, _ = _build(max_workers=4)
        try:
            seq = sequential.query("hq", query)
            par = parallel.query("hq", query)
            assert par.dns() == seq.dns() == oracle[query]
            assert par.messages == seq.messages
            assert par.entries_shipped == seq.entries_shipped
            assert not par.partial and not par.warnings
        finally:
            parallel.close()

    def test_atomic_scatter_coordinator_io_is_identical(self):
        # Remote tasks only touch remote pagers; every coordinator page
        # operation happens at the gather barrier in owner order, so the
        # coordinator's I/O breakdown is bit-identical at any worker count.
        _, sequential, _, _ = _build(max_workers=1)
        _, parallel, _, _ = _build(max_workers=4)
        try:
            seq = sequential.query("hq", ATOMIC_SPANNING)
            par = parallel.query("hq", ATOMIC_SPANNING)
            assert par.io.as_dict() == seq.io.as_dict()
        finally:
            parallel.close()

    def test_enable_parallelism_round_trip(self, oracle):
        _, fed, _, _ = _build(max_workers=1)
        baseline = fed.query("hq", ATOMIC_SPANNING)
        fed.enable_parallelism(4)
        try:
            assert fed.pool.parallel
            assert fed.query("hq", ATOMIC_SPANNING).dns() == baseline.dns()
        finally:
            fed.enable_parallelism(1)
        assert not fed.pool.parallel
        assert fed.query("hq", ATOMIC_SPANNING).dns() == oracle[ATOMIC_SPANNING]


class TestZeroOverhead:
    def test_default_federation_never_starts_threads(self):
        _, fed, _, _ = _build()  # max_workers defaults to 1
        fed.query("hq", ATOMIC_SPANNING)
        fed.query("hq", TREE_SPANNING)
        assert fed.pool.parallel_batches == 0
        assert fed.pool._executor is None


class TestResilienceUnderParallelism:
    def _crashed_fed(self, max_workers):
        plan = FaultPlan(seed=7).crash("subnet1")
        network = FaultInjector(plan)
        _, fed, _, _ = _build(max_workers=max_workers, network=network)
        fed.enable_resilience(mode="partial")
        return fed

    def test_partial_answer_matches_sequential(self):
        sequential = self._crashed_fed(1)
        parallel = self._crashed_fed(4)
        try:
            seq = sequential.query("hq", ATOMIC_SPANNING)
            par = parallel.query("hq", ATOMIC_SPANNING)
            assert seq.partial and par.partial
            assert par.missing_servers == seq.missing_servers == ["subnet1"]
            # Gathering in owner order keeps the degradation notes
            # deterministic however the workers interleaved.
            assert par.warnings == seq.warnings
            assert par.dns() == seq.dns()
            assert par.retries == seq.retries
        finally:
            parallel.close()

    def test_breakers_are_shared_not_duplicated(self):
        fed = self._crashed_fed(4)
        try:
            fed.query("hq", ATOMIC_SPANNING)
            breaker = fed.breakers["subnet1"]
            failures_after_first = breaker.failures
            assert failures_after_first > 0
            fed.query("hq", ATOMIC_SPANNING)
            # Racing workers must get the same breaker object, so its
            # failure history accumulates across queries.
            assert fed.breakers["subnet1"] is breaker
            assert breaker.failures > failures_after_first
        finally:
            fed.close()


class TestTraceGrafting:
    def test_worker_spans_join_the_coordinator_trace(self):
        tracer = Tracer()
        _, fed, _, subnets = _build(max_workers=4, tracer=tracer)
        try:
            fed.query("hq", ATOMIC_SPANNING)
        finally:
            fed.close()
        root = tracer.last_root()
        assert root is not None and root.name == "fed-query"
        spans = list(root.walk())
        # One connected tree: every span shares the root's trace id.
        assert all(span.trace_id == root.trace_id for span in spans)
        remote = [span for span in spans if span.name == "remote-atomic"]
        assert sorted(span.attrs["server"] for span in remote) == sorted(
            "subnet%d" % i for i in range(len(subnets))
        )
        # Each remote server's own tracer recorded a serve-atomic span
        # that joined the coordinator's trace (propagated trace id,
        # parented under that worker's remote-atomic span).
        remote_ids = {span.span_id for span in remote}
        for index in range(len(subnets)):
            server = fed.servers["subnet%d" % index]
            served = server.tracer.last_root()
            assert served is not None and served.name == "serve-atomic"
            assert served.trace_id == root.trace_id
            assert served.parent_id in remote_ids
        assert len(tracer._open) == 0
