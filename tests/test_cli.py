"""The command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def qos_ldif(tmp_path, capsys):
    assert main(["dump-example", "qos"]) == 0
    text = capsys.readouterr().out
    path = tmp_path / "qos.ldif"
    path.write_text(text)
    return str(path)


class TestDumpExample:
    @pytest.mark.parametrize("which", ["qos", "tops", "whitepages"])
    def test_dumps_parse_back(self, which, capsys, tmp_path):
        assert main(["dump-example", which]) == 0
        text = capsys.readouterr().out
        assert "dn: " in text


class TestQuery:
    def test_basic(self, qos_ldif, capsys):
        code = main([
            "query", qos_ldif, "--schema", "qos",
            "(dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SLAPolicyName=dso" in out

    def test_io_flag(self, qos_ldif, capsys):
        main(["query", qos_ldif, "--schema", "qos", "--io",
              "( ? sub ? objectClass=*)"])
        err = capsys.readouterr().err
        assert "page I/Os" in err

    def test_bad_query_reports_error(self, qos_ldif, capsys):
        code = main(["query", qos_ldif, "--schema", "qos", "(((broken"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_schema(self, qos_ldif):
        with pytest.raises(SystemExit):
            main(["query", qos_ldif, "--schema", "nope", "( ? sub ? a=*)"])

    def test_missing_file(self, capsys):
        code = main(["query", "/does/not/exist.ldif", "( ? sub ? a=*)"])
        assert code == 1


class TestExplain:
    def test_plan_printed(self, qos_ldif, capsys):
        code = main([
            "explain", qos_ldif, "--schema", "qos", "--analyze",
            "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
            " (dc=att, dc=com ? sub ? ou=networkPolicies))",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hierarchy a" in out
        assert "actual=" in out


class TestStats:
    def test_summary(self, qos_ldif, capsys):
        assert main(["stats", qos_ldif, "--schema", "qos"]) == 0
        out = capsys.readouterr().out
        assert "entries: " in out
        assert "SLARulePriority" in out


class TestLdapUrl:
    def test_parsed_components(self, capsys):
        code = main(["ldapurl",
                     "ldap://h:389/dc=att,dc=com?cn?sub?(surName=jagadish)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scope:      sub" in out
        assert "ldapsearch" in out

    def test_bad_url(self, capsys):
        assert main(["ldapurl", "http://nope"]) == 1
