"""The command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture
def qos_ldif(tmp_path, capsys):
    assert main(["dump-example", "qos"]) == 0
    text = capsys.readouterr().out
    path = tmp_path / "qos.ldif"
    path.write_text(text)
    return str(path)


class TestDumpExample:
    @pytest.mark.parametrize("which", ["qos", "tops", "whitepages"])
    def test_dumps_parse_back(self, which, capsys, tmp_path):
        assert main(["dump-example", which]) == 0
        text = capsys.readouterr().out
        assert "dn: " in text


class TestQuery:
    def test_basic(self, qos_ldif, capsys):
        code = main([
            "query", qos_ldif, "--schema", "qos",
            "(dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SLAPolicyName=dso" in out

    def test_io_flag(self, qos_ldif, capsys):
        main(["query", qos_ldif, "--schema", "qos", "--io",
              "( ? sub ? objectClass=*)"])
        err = capsys.readouterr().err
        assert "page I/Os" in err

    def test_bad_query_reports_error(self, qos_ldif, capsys):
        code = main(["query", qos_ldif, "--schema", "qos", "(((broken"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_schema(self, qos_ldif):
        with pytest.raises(SystemExit):
            main(["query", qos_ldif, "--schema", "nope", "( ? sub ? a=*)"])

    def test_missing_file(self, capsys):
        code = main(["query", "/does/not/exist.ldif", "( ? sub ? a=*)"])
        assert code == 1


class TestExplain:
    def test_plan_printed(self, qos_ldif, capsys):
        code = main([
            "explain", qos_ldif, "--schema", "qos", "--analyze",
            "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
            " (dc=att, dc=com ? sub ? ou=networkPolicies))",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hierarchy a" in out
        assert "actual=" in out


class TestStats:
    def test_summary(self, qos_ldif, capsys):
        assert main(["stats", qos_ldif, "--schema", "qos"]) == 0
        out = capsys.readouterr().out
        assert "entries: " in out
        assert "SLARulePriority" in out

    def test_json(self, qos_ldif, capsys):
        assert main(["stats", qos_ldif, "--schema", "qos", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] > 0
        assert "SLARulePriority" in payload["attributes"]
        assert payload["io"]["logical_reads"] >= 0


class TestTraceFlag:
    def test_trace_prints_span_tree(self, qos_ldif, capsys):
        code = main(["query", qos_ldif, "--schema", "qos", "--trace",
                     "( ? sub ? objectClass=*)"])
        assert code == 0
        err = capsys.readouterr().err
        assert "execute" in err
        assert "op:atomic" in err
        assert "io=" in err


class TestExplainJson:
    def test_analyze_json_reconciles(self, qos_ldif, capsys):
        code = main([
            "explain", qos_ldif, "--schema", "qos", "--analyze", "--json",
            "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
            " (dc=att, dc=com ? sub ? ou=networkPolicies))",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["actual"] >= 0

        def tree_io(node):
            return node["actual_io"] + sum(
                tree_io(child) for child in node["children"]
            )

        assert payload["total_io"] == tree_io(payload)
        assert payload["total_logical_io"] >= payload["total_io"]

    def test_plain_json_has_estimates_only(self, qos_ldif, capsys):
        code = main(["explain", qos_ldif, "--schema", "qos", "--json",
                     "( ? sub ? objectClass=*)"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "estimate" in payload
        assert "actual" not in payload
        assert "total_io" not in payload


class TestMetricsCommand:
    def test_prometheus_dump(self, qos_ldif, capsys):
        code = main(["metrics", qos_ldif, "--schema", "qos",
                     "--query", "( ? sub ? objectClass=*)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_searches_total counter" in out
        assert 'repro_searches_total{code="success"} 1' in out
        assert "repro_search_seconds_bucket" in out

    def test_json_dump(self, qos_ldif, capsys):
        code = main(["metrics", qos_ldif, "--schema", "qos", "--json",
                     "--query", "( ? sub ? objectClass=*)",
                     "--query", "( ? sub ? objectClass=*)"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repro_searches_total"]["values"][0]["value"] == 2
        assert payload["repro_cache_lookups_total"]["kind"] == "counter"

    def test_slow_log_printed(self, qos_ldif, capsys):
        code = main(["metrics", qos_ldif, "--schema", "qos", "--slow-ms", "0",
                     "--query", "( ? sub ? objectClass=*)"])
        assert code == 0
        err = capsys.readouterr().err
        assert "slow queries" in err
        assert "objectClass" in err


class TestBenchCheck:
    def write(self, tmp_path, payload):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def valid_payload(self):
        return {
            "schema_version": 1,
            "experiment": "x",
            "tables": {"t": [{"n": 1, "io": 2}]},
            "timings_s": {"count": 1, "total": 0.1, "max": 0.1},
            "meta": {},
        }

    def test_valid_file_passes(self, tmp_path, capsys):
        path = self.write(tmp_path, self.valid_payload())
        assert main(["bench-check", path]) == 0
        assert "ok (1 tables, 1 rows)" in capsys.readouterr().out

    def test_invalid_file_fails(self, tmp_path, capsys):
        bad = self.valid_payload()
        bad["tables"] = {}
        path = self.write(tmp_path, bad)
        assert main(["bench-check", path]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_missing_file_fails(self, capsys):
        assert main(["bench-check", "/does/not/exist.json"]) == 1
        assert "unreadable" in capsys.readouterr().out


class TestChaos:
    def test_fault_free_run_is_fully_exact(self, qos_ldif, capsys):
        code = main(["chaos", qos_ldif, "--schema", "qos", "--queries", "20",
                     "--drop-rate", "0", "--latency-ms", "0", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["availability"] == 1.0
        assert report["exact"] == 20
        assert report["mismatch"] == 0 and report["failed"] == 0
        assert report["faults"] == {}
        assert report["retries"] == 0

    def test_seeded_drops_are_reported_and_deterministic(self, qos_ldif, capsys):
        argv = ["chaos", qos_ldif, "--schema", "qos", "--queries", "30",
                "--drop-rate", "0.15", "--seed", "5", "--no-cache", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["faults"].get("dropped", 0) > 0
        assert first["retries"] > 0
        assert first["mismatch"] == 0

    def test_crash_window_degrades_to_partials(self, qos_ldif, capsys):
        code = main(["chaos", qos_ldif, "--schema", "qos", "--queries", "15",
                     "--drop-rate", "0", "--crash", "server1:0",
                     "--no-cache", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["partial"] > 0
        assert report["failed"] == 0  # partial mode still answers
        assert "serverDown" in report["faults"]

    def test_human_report(self, qos_ldif, capsys):
        assert main(["chaos", qos_ldif, "--schema", "qos",
                     "--queries", "10"]) == 0
        out = capsys.readouterr().out
        assert "chaos report" in out
        assert "availability" in out

    def test_bad_window_spec(self, qos_ldif):
        with pytest.raises(SystemExit):
            main(["chaos", qos_ldif, "--schema", "qos",
                  "--crash", "server1"])


class TestLdapUrl:
    def test_parsed_components(self, capsys):
        code = main(["ldapurl",
                     "ldap://h:389/dc=att,dc=com?cn?sub?(surName=jagadish)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scope:      sub" in out
        assert "ldapsearch" in out

    def test_bad_url(self, capsys):
        assert main(["ldapurl", "http://nope"]) == 1


class TestWalDump:
    @pytest.fixture
    def data_dir(self, tmp_path):
        from repro.txn.durable import DurableDirectory
        from repro.workload import random_instance

        instance = random_instance(3, size=10)
        directory = DurableDirectory.open(
            str(tmp_path / "data"), instance, page_size=8
        )
        root = next(iter(instance.roots())).dn
        directory.add(root.child("name=w1"), ["node"], name="w1")
        directory.delete(root.child("name=w1"))
        directory.close()
        return str(tmp_path / "data")

    def test_dumps_records_from_data_dir(self, data_dir, capsys):
        assert main(["wal-dump", data_dir]) == 0
        out = capsys.readouterr().out
        assert "add" in out and "delete" in out
        assert "2 record(s)" in out
        assert "TORN" not in out

    def test_accepts_log_file_path(self, data_dir, capsys):
        assert main(["wal-dump", data_dir + "/wal.log"]) == 0
        assert "2 record(s)" in capsys.readouterr().out

    def test_missing_log_fails(self, tmp_path, capsys):
        assert main(["wal-dump", str(tmp_path / "nope")]) == 1


class TestQueryBudget:
    def test_breach_exits_2_with_a_structured_error(self, qos_ldif, capsys):
        code = main([
            "query", qos_ldif, "--schema", "qos", "--max-pages", "0",
            "( ? sub ? objectClass=*)",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "query budget exceeded" in err
        assert "pages" in err

    def test_generous_budget_does_not_interfere(self, qos_ldif, capsys):
        code = main([
            "query", qos_ldif, "--schema", "qos", "--max-pages", "100000",
            "--max-wall-ms", "60000", "--max-entries", "100000",
            "(dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)",
        ])
        assert code == 0
        assert "SLAPolicyName=dso" in capsys.readouterr().out


class TestMetricsLatencySummary:
    def test_slow_section_reports_quantiles(self, qos_ldif, capsys):
        code = main([
            "metrics", qos_ldif, "--schema", "qos", "--slow-ms", "0",
            "--query", "( ? sub ? objectClass=*)",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "-- search latency:" in err
        assert "p50=" in err and "p95=" in err and "p99=" in err


class TestStatsDepthQuantiles:
    def test_json_payload_includes_depth_quantiles(self, qos_ldif, capsys):
        assert main(["stats", qos_ldif, "--schema", "qos", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        quantiles = payload["depth_quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]


class TestBenchCheckDirectories:
    def test_directory_of_valid_artifacts_passes(self, capsys):
        assert main(["bench-check", "benchmarks/baselines"]) == 0
        out = capsys.readouterr().out
        baselines = len(list(Path("benchmarks/baselines").glob("BENCH_*.json")))
        assert out.count(": ok") == baselines >= 7

    def test_directory_with_an_invalid_artifact_lists_it(self, tmp_path, capsys):
        good = json.dumps({
            "schema_version": 1, "experiment": "e1",
            "tables": {"T": [{"a": 1}]},
            "timings_s": {"count": 1, "total": 0.5, "max": 0.5},
            "meta": {},
        })
        (tmp_path / "BENCH_good.json").write_text(good)
        (tmp_path / "BENCH_bad.json").write_text('{"schema_version": 99}')
        code = main(["bench-check", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "BENCH_bad.json: INVALID" in out
        assert "BENCH_good.json: ok" in out

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench-check", str(tmp_path)])


class TestServeAdmin:
    def test_serves_and_exits_after_duration(self, qos_ldif, capsys):
        import threading
        import time as _time
        import urllib.request

        captured = {}

        # Scrape from a listener thread while the command sleeps out its
        # --duration on the main thread.

        def scrape():
            deadline = _time.time() + 5
            while _time.time() < deadline and "body" not in captured:
                err_text = capsys.readouterr().err
                captured["err"] = captured.get("err", "") + err_text
                for line in captured["err"].splitlines():
                    if line.startswith("admin endpoint at "):
                        url = line.split()[3]
                        with urllib.request.urlopen(url + "/metrics", timeout=5) as r:
                            captured["body"] = r.read()
                        return
                _time.sleep(0.02)

        thread = threading.Thread(target=scrape)
        thread.start()
        code = main([
            "serve-admin", qos_ldif, "--schema", "qos", "--port", "0",
            "--duration", "1.5", "--slow-ms", "0",
            "--query", "( ? sub ? objectClass=*)",
        ])
        thread.join()
        assert code == 0
        assert b"repro_searches_total" in captured.get("body", b"")


@pytest.fixture
def wp_ldif(tmp_path, capsys):
    assert main(["dump-example", "whitepages"]) == 0
    text = capsys.readouterr().out
    path = tmp_path / "wp.ldif"
    path.write_text(text)
    return str(path)


class TestReplicationStatus:
    def test_table(self, wp_ldif, capsys):
        code = main(["replication-status", wp_ldif])
        assert code == 0
        out = capsys.readouterr().out
        assert "REPLICA" in out and "primary" in out and "secondary0" in out

    def test_json_caught_up(self, wp_ldif, capsys):
        code = main(["replication-status", wp_ldif, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["epoch"] == 1
        assert payload["primary"] == "primary"
        assert all(r["lag"] == 0 for r in payload["replicas"].values())

    def test_failover_bumps_the_epoch(self, wp_ldif, capsys):
        code = main(["replication-status", wp_ldif, "--failover", "--json"])
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["epoch"] == 2
        roles = {name: r["role"] for name, r in payload["replicas"].items()}
        assert roles["primary"] == "deposed"
        assert payload["primary"] != "primary"


class TestConsistencyCommand:
    def test_matrix_table(self, capsys):
        code = main(["consistency", "--seeds", "2", "--steps", "24"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SEED" in out
        assert "held every invariant" in out

    def test_matrix_json(self, capsys):
        code = main(["consistency", "--seeds", "2", "--steps", "24",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert all(report["ok"] for report in payload)
        assert all(report["writes_lost_acked"] == 0 for report in payload)

    def test_durable_matrix(self, capsys):
        code = main(["consistency", "--seeds", "1", "--steps", "24",
                     "--durable", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["durable"] is True


class TestTopCommand:
    def test_zipf_workload_table(self, qos_ldif, capsys):
        code = main(["top", qos_ldif, "--schema", "qos",
                     "--queries", "60", "--distinct", "6", "-n", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "60 searches over 6 distinct shapes" in out
        assert "hottest subtrees" in out
        assert "qerror" in out

    def test_json_mode_ranks_by_skew(self, qos_ldif, capsys):
        code = main(["top", qos_ldif, "--schema", "qos", "--json",
                     "--queries", "120", "--distinct", "6", "--seed", "3"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        top = payload["digest"]["top"]
        assert payload["digest"]["observed"] == 120
        # Zipf skew: the table is sorted by calls, heaviest first.
        calls = [row["calls"] for row in top]
        assert calls == sorted(calls, reverse=True)
        assert calls[0] > calls[-1]
        assert payload["heatmap"]["hottest"]

    def test_by_ordering_flag(self, qos_ldif, capsys):
        code = main(["top", qos_ldif, "--schema", "qos", "--json",
                     "--queries", "40", "--by", "pages"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["digest"]["by"] == "pages"


class TestAlertsCommand:
    def test_demo_fires_and_resolves(self, qos_ldif, capsys):
        code = main(["alerts", qos_ldif, "--schema", "qos",
                     "--queries", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[firing" in out
        assert "[resolved" in out

    def test_json_mode_reports_transitions(self, qos_ldif, capsys):
        code = main(["alerts", qos_ldif, "--schema", "qos", "--json",
                     "--queries", "80"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        to = [t["to"] for t in payload["transitions"]]
        assert to == ["firing", "resolved"]
        assert payload["firing"] == []

    def test_custom_rule_text(self, qos_ldif, capsys):
        code = main(["alerts", qos_ldif, "--schema", "qos", "--json",
                     "--rule", "rate(repro_searches_total, 20) > 2",
                     "--queries", "60"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["transitions"][0]["rule"].startswith("rate(")

    def test_bad_rule_reports_error(self, qos_ldif, capsys):
        code = main(["alerts", qos_ldif, "--schema", "qos",
                     "--rule", "not a rule"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
