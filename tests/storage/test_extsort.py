"""External merge sort."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.extsort import external_sort, merge_runs
from repro.storage.pager import Pager
from repro.storage.runs import run_from_iterable


@given(st.lists(st.integers(-1000, 1000), max_size=200), st.integers(2, 5))
@settings(max_examples=40)
def test_sorts_anything(values, memory_pages):
    pager = Pager(page_size=4, buffer_pages=4)
    run = external_sort(pager, values, key=lambda v: v, memory_pages=memory_pages)
    assert run.to_list() == sorted(values)


def test_key_function_respected():
    pager = Pager(page_size=4)
    values = ["bb", "a", "ccc", "dddd"]
    run = external_sort(pager, values, key=len, memory_pages=2)
    assert run.to_list() == ["a", "bb", "ccc", "dddd"]


def test_stability_not_required_but_order_total():
    pager = Pager(page_size=4)
    values = [(1, "x"), (0, "y"), (1, "z")]
    run = external_sort(pager, values, key=lambda p: p[0], memory_pages=2)
    assert [p[0] for p in run.to_list()] == [0, 1, 1]


def test_memory_pages_validation():
    with pytest.raises(ValueError):
        external_sort(Pager(), [1], key=lambda v: v, memory_pages=1)


def test_merge_runs_frees_inputs():
    pager = Pager(page_size=4, buffer_pages=8)
    a = run_from_iterable(pager, [1, 3, 5])
    b = run_from_iterable(pager, [2, 4, 6])
    merged = merge_runs(pager, [a, b], key=lambda v: v)
    assert merged.to_list() == [1, 2, 3, 4, 5, 6]
    with pytest.raises(Exception):
        a.to_list()


def test_io_is_n_log_n_shape():
    """Doubling the input roughly doubles the sort I/O times a log factor --
    never quadratic."""
    page_size, memory_pages = 8, 4
    costs = {}
    for n in (1_000, 2_000, 4_000):
        pager = Pager(page_size=page_size, buffer_pages=memory_pages + 2)
        data = list(range(n))
        random.Random(1).shuffle(data)
        before = pager.stats.snapshot()
        run = external_sort(pager, data, key=lambda v: v, memory_pages=memory_pages)
        costs[n] = pager.stats.since(before).total
        assert run.to_list() == sorted(data)
    assert costs[2_000] < 3 * costs[1_000]
    assert costs[4_000] < 3 * costs[2_000]
