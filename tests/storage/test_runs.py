"""Runs: sequential layout, readers, I/O proportionality."""

import math

import pytest

from repro.storage.pager import Pager
from repro.storage.runs import Run, RunReader, RunWriter, run_from_iterable


class TestWriter:
    def test_roundtrip(self):
        pager = Pager(page_size=4, buffer_pages=4)
        run = run_from_iterable(pager, range(11))
        assert run.to_list() == list(range(11))
        assert len(run) == 11
        assert run.page_count == math.ceil(11 / 4)

    def test_empty_run(self):
        pager = Pager()
        run = run_from_iterable(pager, [])
        assert run.to_list() == []
        assert run.page_count == 0

    def test_writer_close_only_once(self):
        pager = Pager()
        writer = RunWriter(pager)
        writer.append(1)
        writer.close()
        with pytest.raises(RuntimeError):
            writer.close()
        with pytest.raises(RuntimeError):
            writer.append(2)

    def test_free_releases_pages(self):
        pager = Pager(page_size=2)
        run = run_from_iterable(pager, range(6))
        run.free()
        with pytest.raises(Exception):
            run.to_list()


class TestReader:
    def test_peek_and_next(self):
        pager = Pager(page_size=3)
        reader = run_from_iterable(pager, [10, 20, 30, 40]).reader()
        assert reader.peek() == 10
        assert reader.next() == 10
        assert reader.peek() == 20
        assert list(reader) == [20, 30, 40]
        assert reader.exhausted()
        assert reader.peek() is None

    def test_next_past_end(self):
        pager = Pager()
        reader = run_from_iterable(pager, [1]).reader()
        reader.next()
        with pytest.raises(StopIteration):
            reader.next()

    def test_scan_io_is_pages(self):
        pager = Pager(page_size=5, buffer_pages=2)
        run = run_from_iterable(pager, range(50))
        pager.flush()
        before = pager.stats.snapshot()
        assert len(run.to_list()) == 50
        delta = pager.stats.since(before)
        assert delta.logical_reads == run.page_count == 10
        # Physical: at most one fault per page (sequential, no re-reads).
        assert delta.reads <= 10
