"""The string index: equality, prefix, wildcard, presence."""

import re

from hypothesis import given, settings, strategies as st

from repro.storage.pager import Pager
from repro.storage.strindex import StringIndex


def build(pairs, page_size=4):
    pager = Pager(page_size=page_size, buffer_pages=4)
    return StringIndex.build(pager, pairs), pager


PAIRS = [
    ("alpha", 0), ("alpha", 3), ("beta", 1), ("beetle", 2),
    ("gamma", 4), ("alphabet", 5), ("zed", 6),
]


class TestLookups:
    def test_eq(self):
        index, _ = build(PAIRS)
        assert sorted(index.lookup_eq("alpha")) == [0, 3]
        assert list(index.lookup_eq("nope")) == []

    def test_prefix(self):
        index, _ = build(PAIRS)
        assert sorted(index.lookup_prefix("alpha")) == [0, 3, 5]
        assert sorted(index.lookup_prefix("be")) == [1, 2]

    def test_pattern(self):
        index, _ = build(PAIRS)
        assert sorted(index.lookup_pattern("*et*")) == [1, 2, 5]  # beta, beetle, alphabet
        assert sorted(index.lookup_pattern("a*a")) == [0, 3]
        assert sorted(index.lookup_pattern("be*")) == [1, 2]

    def test_presence(self):
        index, _ = build(PAIRS)
        assert sorted(index.lookup_presence()) == [0, 1, 2, 3, 4, 5, 6]

    def test_empty_index(self):
        index, _ = build([])
        assert list(index.lookup_eq("x")) == []
        assert list(index.lookup_pattern("*x*")) == []
        assert list(index.lookup_presence()) == []

    def test_prefix_pattern_narrows_scan(self):
        pairs = [("k%04d" % i, i) for i in range(400)]
        index, pager = build(pairs, page_size=8)
        pager.flush()
        before = pager.stats.snapshot()
        assert sorted(index.lookup_pattern("k000*")) == list(range(10))
        assert pager.stats.since(before).logical_reads <= 4


def test_duplicate_values_spanning_page_boundaries():
    """Regression: equal values crossing index-page boundaries must all be
    found by lookup_eq (bisect_left, not bisect_right)."""
    pairs = [("dup", i) for i in range(20)] + [("zzz", 99)]
    index, _ = build(pairs, page_size=4)
    assert sorted(index.lookup_eq("dup")) == list(range(20))
    assert list(index.lookup_eq("zzz")) == [99]


@given(
    st.lists(
        st.tuples(st.text(alphabet="abc", min_size=0, max_size=4), st.integers(0, 99)),
        max_size=60,
    ),
    st.text(alphabet="abc*", min_size=1, max_size=5),
)
@settings(max_examples=50)
def test_pattern_matches_bruteforce(pairs, pattern):
    if "*" not in pattern:
        pattern += "*"
    index, _ = build(pairs)
    regex = re.compile(
        "^%s$" % "".join(".*" if c == "*" else re.escape(c) for c in pattern)
    )
    expected = sorted(pos for value, pos in pairs if regex.match(value))
    assert sorted(index.lookup_pattern(pattern)) == expected
