"""The directory store: clustering, sparse index, subtree ranges."""

import pytest

from repro.model.dn import DN, ROOT_DN
from repro.storage.pager import Pager
from repro.storage.store import DirectoryStore
from repro.workload import balanced_instance, random_instance


@pytest.fixture(scope="module")
def loaded():
    instance = random_instance(3, size=150, max_children=4)
    store = DirectoryStore.from_instance(instance, page_size=8, buffer_pages=4)
    return instance, store


class TestLayout:
    def test_all_entries_in_order(self, loaded):
        instance, store = loaded
        stored = [e.dn for e in store.scan_all()]
        assert stored == [e.dn for e in instance]
        assert len(store) == len(instance)

    def test_entry_at(self, loaded):
        instance, store = loaded
        entries = list(instance)
        for position in (0, 7, len(entries) - 1):
            assert store.entry_at(position).dn == entries[position].dn

    def test_fetch_positions_dedupes_and_sorts(self, loaded):
        _instance, store = loaded
        fetched = store.fetch_positions([5, 2, 5, 9])
        assert [e.dn.key() for e in fetched] == sorted(e.dn.key() for e in fetched)
        assert len(fetched) == 3


class TestSubtreeScans:
    def test_matches_instance_subtree(self, loaded):
        instance, store = loaded
        for entry in list(instance)[::17]:
            base = entry.dn
            expected = [e.dn for e in instance.subtree(base)]
            got = [e.dn for e in store.scan_subtree(base)]
            assert got == expected

    def test_null_base_scans_everything(self, loaded):
        instance, store = loaded
        assert len(list(store.scan_subtree(ROOT_DN))) == len(instance)

    def test_missing_base_yields_nothing(self, loaded):
        _instance, store = loaded
        assert list(store.scan_subtree(DN.parse("name=doesnotexist"))) == []

    def test_range_io_proportional_to_subtree(self):
        # Scanning a small subtree must not read the whole master run.
        instance = balanced_instance(2000, fanout=4)
        store = DirectoryStore.from_instance(instance, page_size=8, buffer_pages=4)
        store.pager.flush()
        leafish = [e for e in instance if e.dn.depth() >= 5][0]
        subtree_size = len(list(instance.subtree(leafish.dn)))
        before = store.pager.stats.snapshot()
        scanned = list(store.scan_subtree(leafish.dn))
        assert len(scanned) == subtree_size
        delta = store.pager.stats.since(before)
        assert delta.logical_reads <= subtree_size // 8 + 3
        assert delta.logical_reads < store.page_count / 4


class TestIndices:
    def test_build_and_consistency(self):
        instance = random_instance(11, size=120)
        store = DirectoryStore.from_instance(instance, page_size=8)
        store.build_indices(int_attributes=("weight",), string_attributes=("kind",))
        # Every indexed posting points at an entry actually carrying it.
        for position in store.int_indices["weight"].range_scan(None, None):
            assert store.entry_at(position).has("weight")
        positions = list(store.string_indices["kind"].lookup_eq("alpha"))
        for position in positions:
            assert "alpha" in [str(v) for v in store.entry_at(position).values("kind")]
        expected = sum(1 for e in instance if "alpha" in map(str, e.values("kind")))
        assert len(positions) == expected
