"""The simulated block device: accounting semantics."""

import pytest

from repro.storage.pager import Pager, PagerError


class TestAllocation:
    def test_allocate_and_rw(self):
        pager = Pager(page_size=4, buffer_pages=2)
        pid = pager.allocate()
        pager.write(pid, [1, 2, 3])
        assert pager.read(pid) == [1, 2, 3]

    def test_page_overflow(self):
        pager = Pager(page_size=2)
        pid = pager.allocate()
        with pytest.raises(PagerError):
            pager.write(pid, [1, 2, 3])

    def test_unknown_page(self):
        pager = Pager()
        with pytest.raises(PagerError):
            pager.read(99)

    def test_use_after_free(self):
        pager = Pager()
        pid = pager.append_page([1])
        pager.free(pid)
        with pytest.raises(PagerError):
            pager.read(pid)

    def test_bad_parameters(self):
        with pytest.raises(PagerError):
            Pager(page_size=0)
        with pytest.raises(PagerError):
            Pager(buffer_pages=0)


class TestAccounting:
    def test_buffer_hits_are_free(self):
        pager = Pager(page_size=4, buffer_pages=4)
        pid = pager.append_page([1])
        before = pager.stats.total
        for _ in range(10):
            pager.read(pid)
        assert pager.stats.total == before  # all hits
        assert pager.stats.logical_reads == 10

    def test_eviction_writes_dirty_page(self):
        pager = Pager(page_size=2, buffer_pages=2)
        pids = [pager.append_page([i]) for i in range(3)]  # third evicts first
        assert pager.stats.writes >= 1
        # Reading the evicted page is a physical read.
        reads_before = pager.stats.reads
        pager.read(pids[0])
        assert pager.stats.reads == reads_before + 1

    def test_clean_eviction_writes_nothing(self):
        pager = Pager(page_size=2, buffer_pages=2)
        pids = [pager.append_page([i]) for i in range(2)]
        pager.flush()
        writes_after_flush = pager.stats.writes
        # Evict the clean pages by faulting others in.
        pager.append_page([9])
        pager.read(pids[0])
        pager.read(pids[1])
        # The two clean pages were dropped silently; only the new dirty page
        # may have been written back.
        assert pager.stats.writes <= writes_after_flush + 1

    def test_flush_idempotent(self):
        pager = Pager(page_size=4, buffer_pages=2)
        pager.append_page([1])
        pager.flush()
        writes = pager.stats.writes
        pager.flush()
        assert pager.stats.writes == writes

    def test_snapshot_since(self):
        pager = Pager(page_size=2, buffer_pages=1)
        before = pager.stats.snapshot()
        pager.append_page([1])
        pager.append_page([2])  # evicts the first -> 1 physical write
        delta = pager.stats.since(before)
        assert delta.writes == 1
        assert delta.allocated == 2

    def test_scan_costs_n_over_b(self):
        # The foundational identity: scanning n records costs ceil(n/B).
        pager = Pager(page_size=8, buffer_pages=2)
        pids = [pager.append_page(list(range(8))) for _ in range(10)]
        pager.flush()
        before = pager.stats.snapshot()
        for pid in pids:
            pager.read(pid)
        # With only 2 buffer pages, all 10 reads fault (8 stayed at most 2).
        assert pager.stats.since(before).reads >= 8


class TestPool:
    def test_pool_bounded(self):
        pager = Pager(page_size=2, buffer_pages=3)
        for i in range(20):
            pager.append_page([i])
        assert pager.pages_in_pool <= 3

    def test_write_read_consistency_through_eviction(self):
        pager = Pager(page_size=2, buffer_pages=2)
        pids = [pager.append_page([i, i * 10]) for i in range(8)]
        for i, pid in enumerate(pids):
            assert pager.read(pid) == [i, i * 10]
