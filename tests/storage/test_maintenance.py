"""Updates against the read-optimised store: log, compaction, semantics."""

import pytest

from repro.model.schema import SchemaError
from repro.storage.maintenance import UpdatableDirectory, UpdateError
from repro.workload import random_instance, synthetic_schema


@pytest.fixture
def updatable():
    instance = random_instance(23, size=80)
    return instance, UpdatableDirectory.from_instance(instance, page_size=8)


class TestAdd:
    def test_add_then_query(self, updatable):
        instance, directory = updatable
        root = next(iter(instance.roots())).dn
        directory.add(root.child("name=new1"), ["node"], name="new1", kind="alpha")
        engine = directory.engine()
        result = engine.run("( ? sub ? name=new1)")
        assert len(result) == 1

    def test_duplicate_rejected(self, updatable):
        instance, directory = updatable
        existing = next(iter(instance)).dn
        with pytest.raises(UpdateError):
            directory.add(existing, ["node"], name="x")

    def test_duplicate_within_log_rejected(self, updatable):
        instance, directory = updatable
        root = next(iter(instance.roots())).dn
        dn = root.child("name=dup")
        directory.add(dn, ["node"], name="dup")
        with pytest.raises(UpdateError):
            directory.add(dn, ["node"], name="dup")

    def test_schema_still_enforced(self, updatable):
        instance, directory = updatable
        root = next(iter(instance.roots())).dn
        with pytest.raises(SchemaError):
            directory.add(root.child("name=bad"), ["martian"], name="bad")

    def test_length_tracks_pending(self, updatable):
        instance, directory = updatable
        before = len(directory)
        root = next(iter(instance.roots())).dn
        directory.add(root.child("name=n1"), ["node"], name="n1")
        assert len(directory) == before + 1


class TestDelete:
    def test_delete_leaf(self, updatable):
        instance, directory = updatable
        leaf = next(
            e.dn for e in instance if not any(True for _ in instance.children_of(e.dn))
        )
        directory.delete(leaf)
        assert directory.lookup(leaf) is None
        directory.compact()
        assert all(e.dn != leaf for e in directory.store.scan_all())

    def test_delete_inner_requires_recursive(self, updatable):
        instance, directory = updatable
        inner = next(
            e.dn for e in instance if any(True for _ in instance.children_of(e.dn))
        )
        with pytest.raises(UpdateError):
            directory.delete(inner)
        subtree_size = len(list(instance.subtree(inner)))
        directory.delete(inner, recursive=True)
        directory.compact()
        assert len(directory.store) == len(instance) - subtree_size

    def test_delete_missing(self, updatable):
        _instance, directory = updatable
        with pytest.raises(UpdateError):
            directory.delete("name=ghost")

    def test_delete_pending_add(self, updatable):
        instance, directory = updatable
        root = next(iter(instance.roots())).dn
        dn = root.child("name=temp")
        directory.add(dn, ["node"], name="temp")
        directory.delete(dn)
        directory.compact()
        assert directory.lookup(dn) is None


class TestModify:
    def test_replace_values(self, updatable):
        instance, directory = updatable
        victim = next(e for e in instance if e.has("kind"))
        directory.modify(victim.dn, replace={"kind": ["omega"]})
        assert directory.lookup(victim.dn).values("kind") == ("omega",)
        directory.compact()
        stored = directory.lookup(victim.dn)
        assert stored.values("kind") == ("omega",)

    def test_add_and_remove_values(self, updatable):
        instance, directory = updatable
        victim = next(e for e in instance if e.has("kind"))
        directory.modify(victim.dn, add_values={"tag": ["added"]})
        assert "added" in directory.lookup(victim.dn).values("tag")
        directory.modify(victim.dn, remove_values={"tag": ["added"]})
        assert "added" not in directory.lookup(victim.dn).values("tag")

    def test_remove_attribute_entirely(self, updatable):
        instance, directory = updatable
        victim = next(e for e in instance if e.has("tag"))
        directory.modify(victim.dn, replace={"tag": []})
        assert not directory.lookup(victim.dn).has("tag")

    def test_protected_attributes(self, updatable):
        instance, directory = updatable
        victim = next(iter(instance))
        rdn_attr = next(victim.dn.rdn.attributes())
        with pytest.raises(UpdateError):
            directory.modify(victim.dn, replace={rdn_attr: ["evil"]})
        with pytest.raises(UpdateError):
            directory.modify(victim.dn, replace={"objectClass": ["other"]})

    def test_modify_missing(self, updatable):
        _instance, directory = updatable
        with pytest.raises(UpdateError):
            directory.modify("name=ghost", replace={"kind": ["x"]})


class TestErrorCodes:
    """UpdateError carries a structured code -- no message sniffing."""

    def test_duplicate_add(self, updatable):
        instance, directory = updatable
        existing = next(iter(instance)).dn
        with pytest.raises(UpdateError) as excinfo:
            directory.add(existing, ["node"], name="x")
        assert excinfo.value.code == UpdateError.ALREADY_EXISTS

    def test_delete_missing(self, updatable):
        _instance, directory = updatable
        with pytest.raises(UpdateError) as excinfo:
            directory.delete("name=ghost")
        assert excinfo.value.code == UpdateError.NO_SUCH_ENTRY

    def test_delete_nonleaf(self, updatable):
        instance, directory = updatable
        inner = next(
            e.dn for e in instance if any(True for _ in instance.children_of(e.dn))
        )
        with pytest.raises(UpdateError) as excinfo:
            directory.delete(inner)
        assert excinfo.value.code == UpdateError.HAS_CHILDREN

    def test_modify_missing(self, updatable):
        _instance, directory = updatable
        with pytest.raises(UpdateError) as excinfo:
            directory.modify("name=ghost", replace={"kind": ["x"]})
        assert excinfo.value.code == UpdateError.NO_SUCH_ENTRY

    def test_modify_protected(self, updatable):
        instance, directory = updatable
        victim = next(iter(instance))
        with pytest.raises(UpdateError) as excinfo:
            directory.modify(victim.dn, replace={"objectClass": ["other"]})
        assert excinfo.value.code == UpdateError.PROTECTED_ATTRIBUTE

    def test_default_code(self):
        assert UpdateError("boom").code == UpdateError.OTHER


class TestCompaction:
    def test_noop_when_empty(self, updatable):
        _instance, directory = updatable
        store = directory.store
        assert directory.compact() is store  # unchanged

    def test_order_preserved(self, updatable):
        instance, directory = updatable
        root = next(iter(instance.roots())).dn
        for index in range(10):
            directory.add(root.child("name=zz%d" % index), ["node"], name="zz%d" % index)
        directory.compact()
        keys = [e.dn.key() for e in directory.store.scan_all()]
        assert keys == sorted(keys)

    def test_auto_compaction(self):
        instance = random_instance(24, size=40)
        directory = UpdatableDirectory.from_instance(instance, auto_compact_at=5)
        root = next(iter(instance.roots())).dn
        for index in range(12):
            directory.add(root.child("name=a%d" % index), ["node"], name="a%d" % index)
        assert directory.compactions >= 2
        assert directory.pending() < 5

    def test_indices_rebuilt(self, updatable):
        instance, directory = updatable
        directory.store.build_indices(string_attributes=("name",))
        root = next(iter(instance.roots())).dn
        directory.add(root.child("name=indexedx"), ["node"], name="indexedx")
        directory.compact()
        positions = list(directory.store.string_indices["name"].lookup_eq("indexedx"))
        assert len(positions) == 1

    def test_queries_see_all_updates(self, updatable):
        instance, directory = updatable
        root = next(iter(instance.roots())).dn
        directory.add(root.child("name=q1"), ["node"], name="q1", kind="delta")
        victim = next(e for e in instance if e.has("kind") and e.dn != root)
        directory.modify(victim.dn, replace={"kind": ["delta"]})
        engine = directory.engine()
        result = engine.run("( ? sub ? kind=delta)")
        dns = result.dns()
        assert str(root.child("name=q1")) in dns
        assert str(victim.dn) in dns
