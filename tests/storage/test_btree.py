"""The B+tree index: point and range queries vs brute force."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.btree import BPlusTree
from repro.storage.pager import Pager


def build(pairs, page_size=4):
    pager = Pager(page_size=page_size, buffer_pages=4)
    return BPlusTree.bulk_load(pager, sorted(pairs)), pager


class TestBasics:
    def test_empty(self):
        tree, _ = build([])
        assert tree.search(5) == []
        assert list(tree.range_scan(None, None)) == []

    def test_point(self):
        tree, _ = build([(i, i * 10) for i in range(20)])
        assert tree.search(7) == [70]
        assert tree.search(99) == []

    def test_duplicate_keys(self):
        tree, _ = build([(5, 1), (5, 2), (5, 3), (6, 4)])
        assert sorted(tree.search(5)) == [1, 2, 3]

    def test_open_ranges(self):
        tree, _ = build([(i, i) for i in range(10)])
        assert list(tree.range_scan(None, 3, True, True)) == [0, 1, 2, 3]
        assert list(tree.range_scan(None, 3, True, False)) == [0, 1, 2]
        assert list(tree.range_scan(7, None, False, True)) == [8, 9]
        assert list(tree.range_scan(7, None, True, True)) == [7, 8, 9]

    def test_range_reads_only_needed_leaves(self):
        tree, pager = build([(i, i) for i in range(400)], page_size=8)
        pager.flush()
        before = pager.stats.snapshot()
        result = list(tree.range_scan(100, 115))
        assert result == list(range(100, 116))
        # 16 results over 8-per-page leaves: at most 4 leaf reads.
        assert pager.stats.since(before).logical_reads <= 4


def test_duplicate_keys_spanning_leaf_boundaries():
    """Regression: with many equal keys crossing page boundaries the scan
    must start at the first leaf that can hold the key, not the last
    (bisect_left, not bisect_right)."""
    pairs = [(5, i) for i in range(20)] + [(7, 100 + i) for i in range(20)]
    tree, _ = build(pairs, page_size=4)  # keys 5 and 7 each span 5 leaves
    assert sorted(tree.search(5)) == list(range(20))
    assert sorted(tree.search(7)) == list(range(100, 120))
    assert sorted(tree.range_scan(5, 7)) == sorted(
        list(range(20)) + list(range(100, 120))
    )


@given(
    st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)), max_size=100),
    st.integers(0, 50),
    st.integers(0, 50),
)
@settings(max_examples=50)
def test_range_matches_bruteforce(pairs, low, high):
    tree, _ = build(pairs)
    got = sorted(tree.range_scan(min(low, high), max(low, high)))
    expected = sorted(
        value for key, value in pairs if min(low, high) <= key <= max(low, high)
    )
    assert got == expected
