"""The spilling stack: LIFO correctness and amortised I/O."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.storage.pagedstack import PagedStack
from repro.storage.pager import Pager


class TestBasics:
    def test_lifo(self):
        stack = PagedStack(Pager(page_size=2, buffer_pages=2))
        for i in range(5):
            stack.push(i)
        assert [stack.pop() for _ in range(5)] == [4, 3, 2, 1, 0]

    def test_peek(self):
        stack = PagedStack(Pager())
        assert stack.peek() is None
        stack.push("a")
        assert stack.peek() == "a"
        assert len(stack) == 1

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            PagedStack(Pager()).pop()

    def test_replace_top(self):
        stack = PagedStack(Pager())
        stack.push(1)
        stack.replace_top(99)
        assert stack.pop() == 99
        with pytest.raises(IndexError):
            stack.replace_top(0)

    def test_replace_top_after_spill(self):
        pager = Pager(page_size=2, buffer_pages=2)
        stack = PagedStack(pager)
        for i in range(10):
            stack.push(i)
        while len(stack) > 1:
            stack.pop()
        stack.replace_top("swapped")
        assert stack.pop() == "swapped"

    def test_max_depth(self):
        stack = PagedStack(Pager())
        for i in range(7):
            stack.push(i)
        stack.pop()
        assert stack.max_depth == 7


@given(st.lists(st.sampled_from(["push", "pop"]), max_size=200), st.integers(1, 4))
def test_matches_python_list(ops, page_size):
    pager = Pager(page_size=page_size, buffer_pages=2)
    stack = PagedStack(pager)
    model = []
    counter = 0
    for op in ops:
        if op == "push":
            stack.push(counter)
            model.append(counter)
            counter += 1
        else:
            if model:
                assert stack.pop() == model.pop()
            else:
                with pytest.raises(IndexError):
                    stack.pop()
        assert len(stack) == len(model)
        assert stack.peek() == (model[-1] if model else None)


def test_amortised_io_linear_in_ops_over_b():
    """The Theorem 5.1 ingredient: N pushes + N pops cost O(N/B) transfers,
    even for the adversarial grow-shrink pattern."""
    page_size = 16
    pager = Pager(page_size=page_size, buffer_pages=2)
    stack = PagedStack(pager)
    rng = random.Random(5)
    operations = 20_000
    depth = 0
    before = pager.stats.snapshot()
    for _ in range(operations):
        if depth == 0 or rng.random() < 0.55:
            stack.push(depth)
            depth += 1
        else:
            stack.pop()
            depth -= 1
    delta = pager.stats.since(before)
    # Hysteresis bound: < 2 transfers per B operations, with slack 3x.
    assert delta.total <= 3 * operations / page_size


def test_boundary_thrash_resistant():
    """Alternating push/pop exactly at a page boundary must not transfer a
    page per operation (the naive single-buffer scheme does)."""
    page_size = 8
    pager = Pager(page_size=page_size, buffer_pages=2)
    stack = PagedStack(pager)
    for i in range(2 * page_size - 1):  # just below the spill threshold
        stack.push(i)
    before = pager.stats.snapshot()
    for _ in range(1000):
        stack.push("x")
        stack.pop()
    assert pager.stats.since(before).total <= 1000 / page_size + 4
