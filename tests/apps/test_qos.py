"""The QoS/SLA application: Figure 12 reconstruction and Section 2
decision semantics."""

import pytest

from repro.apps import qos
from repro.model.dn import DN


@pytest.fixture(scope="module")
def directory():
    return qos.build_paper_fragment()


@pytest.fixture(scope="module")
def pdp(directory):
    return qos.PolicyDecisionPoint(directory)


class TestFigure12Structure:
    def test_policy_dso(self, directory):
        dn = DN.parse(
            "SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        )
        policy = directory.instance.get(dn)
        assert policy is not None
        assert policy.first("SLARulePriority") == 2
        assert policy.first("SLAPolicyScope") == "DataTraffic"
        assert len(policy.values("SLATPRef")) == 2
        assert len(policy.values("SLAPVPRef")) == 2
        assert len(policy.values("SLAExceptionRef")) == 2

    def test_profile_lsplitoff(self, directory):
        dn = DN.parse(
            "TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        )
        profile = directory.instance.get(dn)
        assert profile.first("SourceAddress") == "204.178.16.*"

    def test_period_weekend(self, directory):
        dn = DN.parse(
            "PVPName=1998weekend, ou=policyValidityPeriod, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        )
        period = directory.instance.get(dn)
        assert period.first("PVStartTime") == 19980101060000
        assert period.first("PVEndTime") == 19981231180000
        assert set(period.values("PVDayOfWeek")) == {6, 7}

    def test_action_denyall(self, directory):
        dn = DN.parse(
            "DSActionName=denyAll, ou=SLADSAction, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        )
        action = directory.instance.get(dn)
        assert action.first("DSPermission") == "Deny"
        assert action.first("DSInProfilePeakRate") == 20
        assert action.first("DSDropPriority") == 2

    def test_instance_valid(self, directory):
        assert directory.instance.validate() == []


class TestMatching:
    def test_address_wildcards(self, directory):
        profile = directory.instance.get(DN.parse(
            "TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        ))
        assert qos.profile_matches(profile, qos.PacketProfile("204.178.16.5"))
        assert qos.profile_matches(profile, qos.PacketProfile("204.178.16.250"))
        assert not qos.profile_matches(profile, qos.PacketProfile("204.178.17.5"))
        assert not qos.profile_matches(profile, qos.PacketProfile("10.0.0.1"))

    def test_period_bounds(self, directory):
        period = directory.instance.get(DN.parse(
            "PVPName=1998weekend, ou=policyValidityPeriod, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        ))
        weekend = qos.PacketProfile("x", timestamp=19980704120000, day_of_week=6)
        weekday = qos.PacketProfile("x", timestamp=19980706120000, day_of_week=1)
        too_early = qos.PacketProfile("x", timestamp=19970101000000, day_of_week=6)
        assert qos.period_matches(period, weekend)
        assert not qos.period_matches(period, weekday)
        assert not qos.period_matches(period, too_early)


class TestDecisions:
    def test_deny_on_weekend(self, pdp):
        packet = qos.PacketProfile("204.178.16.5", timestamp=19980704120000, day_of_week=6)
        assert [a.first("DSActionName") for a in pdp.decide(packet)] == ["denyAll"]

    def test_ftp_exception(self, pdp):
        packet = qos.PacketProfile(
            "204.178.16.5", dest_port=21, protocol="tcp",
            timestamp=19980704120000, day_of_week=6,
        )
        assert [a.first("DSActionName") for a in pdp.decide(packet)] == ["allowFtp"]

    def test_mail_exception(self, pdp):
        packet = qos.PacketProfile(
            "204.178.16.5", source_port=25, protocol="tcp",
            timestamp=19980704120000, day_of_week=6,
        )
        assert [a.first("DSActionName") for a in pdp.decide(packet)] == ["allowMail"]

    def test_thanksgiving(self, pdp):
        packet = qos.PacketProfile("207.140.3.4", timestamp=19981126120000, day_of_week=4)
        assert [a.first("DSActionName") for a in pdp.decide(packet)] == ["denyAll"]

    def test_no_policy_applies(self, pdp):
        packet = qos.PacketProfile("10.9.8.7", timestamp=19980706120000, day_of_week=1)
        assert pdp.decide(packet) == []

    def test_higher_priority_wins(self, directory):
        qos2 = qos.build_paper_fragment()
        qos2.add_action("expedite", "Permit", peak_rate=99)
        qos2.add_traffic_profile("everything", source_address="*.*.*.*")
        qos2.add_policy("vip", priority=1, action="expedite", profiles=("everything",))
        pdp = qos.PolicyDecisionPoint(qos2)
        packet = qos.PacketProfile("204.178.16.5", timestamp=19980704120000, day_of_week=6)
        assert [a.first("DSActionName") for a in pdp.decide(packet)] == ["expedite"]


class TestConflicts:
    def test_paper_fragment_conflicts(self, directory):
        pairs = {
            tuple(sorted((a.first("SLAPolicyName"), b.first("SLAPolicyName"))))
            for a, b in qos.find_conflicts(directory)
        }
        # dso conflicts with nobody (its exceptions cover the overlaps);
        # fatt/mail overlap conservatively on a packet that is both ftp and
        # smtp -- the detector is deliberately conservative.
        assert ("dso", "fatt") not in pairs
        assert ("dso", "mail") not in pairs

    def test_genuine_conflict_detected(self):
        qos2 = qos.QoSDirectory("dc=x, dc=com")
        qos2.add_traffic_profile("all1", source_address="10.0.0.*")
        qos2.add_traffic_profile("all2", source_address="10.0.*.*")
        qos2.add_action("yes", "Permit")
        qos2.add_action("no", "Deny")
        qos2.add_policy("p1", priority=1, action="yes", profiles=("all1",))
        qos2.add_policy("p2", priority=1, action="no", profiles=("all2",))
        names = {
            tuple(sorted((a.first("SLAPolicyName"), b.first("SLAPolicyName"))))
            for a, b in qos.find_conflicts(qos2)
        }
        assert ("p1", "p2") in names

    def test_exception_relation_suppresses_conflict(self):
        qos2 = qos.QoSDirectory("dc=x, dc=com")
        qos2.add_traffic_profile("all1", source_address="10.0.0.*")
        qos2.add_action("yes", "Permit")
        qos2.add_action("no", "Deny")
        qos2.add_policy("p2", priority=1, action="no", profiles=("all1",))
        qos2.add_policy("p1", priority=1, action="yes", profiles=("all1",),
                        exceptions=("p2",))
        assert qos.find_conflicts(qos2) == []
