"""The TOPS application: Figure 11 reconstruction and call resolution."""

import pytest

from repro.apps import tops
from repro.model.dn import DN


@pytest.fixture(scope="module")
def directory():
    return tops.build_paper_fragment()


class TestFigure11Structure:
    def test_subscriber_entry(self, directory):
        dn = DN.parse("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com")
        jag = directory.instance.get(dn)
        assert jag is not None
        assert jag.classes == frozenset({"inetOrgPerson", "TOPSSubscriber"})
        assert jag.first("commonName") == "h jagadish"
        assert jag.first("surName") == "jagadish"

    def test_weekend_qhp_priority_1(self, directory):
        qhp = directory.instance.get(directory.qhp_dn("jag", "weekend"))
        assert qhp.first("priority") == 1
        assert set(qhp.values("daysOfWeek")) == {6, 7}
        assert not qhp.has("startTime")  # heterogeneity: absent constraint

    def test_workinghours_qhp_priority_2(self, directory):
        qhp = directory.instance.get(directory.qhp_dn("jag", "workinghours"))
        assert qhp.first("priority") == 2
        assert qhp.first("startTime") == 830
        assert qhp.first("endTime") == 1730
        assert not qhp.has("daysOfWeek")

    def test_call_appearances(self, directory):
        office = directory.instance.get(
            directory.qhp_dn("jag", "workinghours").child("CANumber=9733608750")
        )
        assert office.first("priority") == 1
        assert office.first("timeOut") == 30
        secretary = directory.instance.get(
            directory.qhp_dn("jag", "workinghours").child("CANumber=9733608751")
        )
        assert secretary.first("priority") == 2
        assert secretary.first("timeOut") == 20
        assert secretary.first("description") == "secretary"

    def test_instance_valid(self, directory):
        assert directory.instance.validate() == []


class TestQHPMatching:
    def test_time_window(self, directory):
        qhp = directory.instance.get(directory.qhp_dn("jag", "workinghours"))
        assert tops.qhp_matches(qhp, tops.CallRequest("jag", 1000, 2))
        assert tops.qhp_matches(qhp, tops.CallRequest("jag", 830, 2))
        assert tops.qhp_matches(qhp, tops.CallRequest("jag", 1730, 2))
        assert not tops.qhp_matches(qhp, tops.CallRequest("jag", 829, 2))
        assert not tops.qhp_matches(qhp, tops.CallRequest("jag", 2300, 2))

    def test_days(self, directory):
        qhp = directory.instance.get(directory.qhp_dn("jag", "weekend"))
        assert tops.qhp_matches(qhp, tops.CallRequest("jag", 1000, 6))
        assert not tops.qhp_matches(qhp, tops.CallRequest("jag", 1000, 3))

    def test_allowed_callers(self):
        directory = tops.build_paper_fragment()
        directory.add_subscriber("vip", "very important", "person")
        directory.add_qhp("vip", "friends", priority=1, allowed_callers=("jag",))
        qhp = directory.instance.get(directory.qhp_dn("vip", "friends"))
        assert tops.qhp_matches(qhp, tops.CallRequest("vip", 1000, 2, caller_uid="jag"))
        assert not tops.qhp_matches(qhp, tops.CallRequest("vip", 1000, 2, caller_uid="x"))
        assert not tops.qhp_matches(qhp, tops.CallRequest("vip", 1000, 2))


class TestResolveCall:
    def test_working_hours(self, directory):
        result = tops.resolve_call(directory, tops.CallRequest("jag", 1000, 2))
        assert [e.first("CANumber") for e in result] == [
            "9733608750", "9733608751", "9733608798",
        ]

    def test_weekend_overrides_working_hours(self, directory):
        # Saturday 10:00 matches BOTH QHPs; weekend has the higher priority
        # (lower value), so only the voicemail appearance is returned.
        result = tops.resolve_call(directory, tops.CallRequest("jag", 1000, 6))
        assert [e.first("CANumber") for e in result] == ["9733608799"]

    def test_unreachable_hours(self, directory):
        assert tops.resolve_call(directory, tops.CallRequest("jag", 300, 2)) == []

    def test_unknown_subscriber(self, directory):
        assert tops.resolve_call(directory, tops.CallRequest("nobody", 1000, 2)) == []

    def test_appearances_ordered_by_priority(self, directory):
        result = tops.resolve_call(directory, tops.CallRequest("jag", 900, 1))
        priorities = [e.first("priority") for e in result]
        assert priorities == sorted(priorities)
