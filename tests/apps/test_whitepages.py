"""The corporate white pages application."""

import pytest

from repro.apps.whitepages import WhitePages


@pytest.fixture(scope="module")
def pages():
    wp = WhitePages("dc=att, dc=com")
    boss = wp.add_person(
        ["research"], "jag", "h jagadish", "jagadish",
        telephone="9733608776", title="department head",
    )
    divesh = wp.add_person(
        ["research", "db"], "divesh", "divesh srivastava", "srivastava",
        telephone="9733608777", manager=boss,
    )
    wp.add_person(
        ["research", "db"], "dimitra", "dimitra vista", "vista",
        manager=divesh,
    )
    wp.add_person(
        ["research", "networking"], "kk", "k ramakrishnan", "ramakrishnan",
        manager=boss,
    )
    wp.add_person(["sales"], "milo", "tova milo", "milo", telephone="5551234")
    return wp


class TestSearch:
    def test_by_surname_fragment(self, pages):
        hits = pages.search_people("srivast")
        assert [e.first("uid") for e in hits] == ["divesh"]

    def test_by_common_name(self, pages):
        hits = pages.search_people("*tova*")
        assert [e.first("uid") for e in hits] == ["milo"]

    def test_pattern_passthrough(self, pages):
        assert len(pages.search_people("*a*")) >= 4

    def test_no_hits(self, pages):
        assert pages.search_people("zzz") == []


class TestHierarchy:
    def test_unit_of_is_nearest(self, pages):
        divesh = pages.search_people("srivast")[0]
        unit = pages.unit_of(divesh)
        assert unit.first("ou") == "db"  # not "research"

    def test_unit_of_top_level_person(self, pages):
        jag = pages.search_people("jagadish")[0]
        assert pages.unit_of(jag).first("ou") == "research"

    def test_headcount(self, pages):
        units = pages.units_with_headcount_over(1)
        assert [u.first("ou") for u in units] == ["db"]
        assert pages.units_with_headcount_over(10) == []


class TestReporting:
    def test_direct_reports(self, pages):
        jag = pages.search_people("jagadish")[0]
        reports = pages.direct_reports(jag)
        assert sorted(e.first("uid") for e in reports) == ["divesh", "kk"]

    def test_managers_with_reports_over(self, pages):
        managers = pages.managers_with_reports_over(1)
        assert [e.first("uid") for e in managers] == ["jag"]

    def test_management_chain(self, pages):
        dimitra = pages.search_people("vista")[0]
        chain = pages.management_chain(dimitra)
        assert [e.first("uid") for e in chain] == ["divesh", "jag"]

    def test_chain_of_top(self, pages):
        jag = pages.search_people("jagadish")[0]
        assert pages.management_chain(jag) == []


class TestPhoneBook:
    def test_unit_subtree(self, pages):
        book = pages.phone_book(["research"])
        names = [name for name, _phone in book]
        assert names == sorted(names)
        assert ("h jagadish", "9733608776") in book
        assert ("divesh srivastava", "9733608777") in book
        assert all("tova" not in name for name, _ in book)

    def test_missing_phone_rendered(self, pages):
        book = pages.phone_book(["research", "db"])
        assert ("dimitra vista", "-") in book
