"""Filter string parsing."""

import pytest

from repro.filters.ast import (
    Comparison,
    Equality,
    FilterAnd,
    FilterNot,
    FilterOr,
    MatchAll,
    Presence,
    Substring,
)
from repro.filters.parser import FilterParseError, parse_atomic_filter, parse_filter


class TestAtomic:
    def test_equality(self):
        f = parse_atomic_filter("surName=jagadish")
        assert f == Equality("surName", "jagadish")

    def test_presence(self):
        assert parse_atomic_filter("telephoneNumber=*") == Presence("telephoneNumber")

    def test_object_class_star_is_match_all(self):
        assert parse_atomic_filter("objectClass=*") == MatchAll()

    def test_substring(self):
        assert parse_atomic_filter("commonName=*jag*") == Substring("commonName", "*jag*")

    def test_comparisons(self):
        assert parse_atomic_filter("SLARulePriority<3") == Comparison("SLARulePriority", "<", 3)
        assert parse_atomic_filter("n<=3") == Comparison("n", "<=", 3)
        assert parse_atomic_filter("n>=3") == Comparison("n", ">=", 3)
        assert parse_atomic_filter("n>3") == Comparison("n", ">", 3)

    def test_parenthesised(self):
        assert parse_atomic_filter("(cn=x)") == Equality("cn", "x")

    def test_boolean_rejected(self):
        with pytest.raises(FilterParseError):
            parse_atomic_filter("(&(a=1)(b=2))")

    def test_garbage(self):
        with pytest.raises(FilterParseError):
            parse_atomic_filter("no-operator-here")
        with pytest.raises(FilterParseError):
            parse_atomic_filter("n<abc")
        with pytest.raises(FilterParseError):
            parse_atomic_filter("=value")


class TestComposite:
    def test_and(self):
        f = parse_filter("(&(cn=x)(n<3))")
        assert isinstance(f, FilterAnd)
        assert f.operands == [Equality("cn", "x"), Comparison("n", "<", 3)]

    def test_nested(self):
        f = parse_filter("(|(&(a=1)(b=2))(!(c=3)))")
        assert isinstance(f, FilterOr)
        assert isinstance(f.operands[0], FilterAnd)
        assert isinstance(f.operands[1], FilterNot)

    def test_not_single_operand(self):
        with pytest.raises(FilterParseError):
            parse_filter("(!(a=1)(b=2))")

    def test_unbalanced(self):
        with pytest.raises(FilterParseError):
            parse_filter("(&(a=1)")

    def test_trailing_garbage(self):
        with pytest.raises(FilterParseError):
            parse_filter("(a=1)junk")

    def test_empty(self):
        with pytest.raises(FilterParseError):
            parse_filter("")
        with pytest.raises(FilterParseError):
            parse_filter("()")
