"""Atomic filter semantics (Section 4.1) and LDAP boolean combinations."""

import pytest

from repro.filters.ast import (
    Comparison,
    Equality,
    FilterAnd,
    FilterError,
    FilterNot,
    FilterOr,
    MatchAll,
    Presence,
    Substring,
)
from repro.model.dn import DN
from repro.model.entry import Entry
from repro.model.schema import DirectorySchema


@pytest.fixture
def schema():
    s = DirectorySchema()
    s.add_attribute("cn", "string")
    s.add_attribute("n", "int")
    s.add_attribute("ref", "distinguishedName")
    s.add_class("person", {"cn", "n", "ref"})
    return s


def entry(**values):
    return Entry(DN.parse("cn=x, dc=com"), ["person"], values)


class TestPresence:
    def test_present(self):
        assert Presence("cn").matches(entry(cn=["x"]))
        assert not Presence("cn").matches(entry(n=[1]))


class TestMatchAll:
    def test_always(self):
        assert MatchAll().matches(entry())
        assert str(MatchAll()) == "objectClass=*"


class TestEquality:
    def test_string(self):
        assert Equality("cn", "x").matches(entry(cn=["x", "y"]))
        assert not Equality("cn", "z").matches(entry(cn=["x", "y"]))

    def test_int_value_from_string_target(self):
        assert Equality("n", "5").matches(entry(n=[5]))
        assert not Equality("n", "6").matches(entry(n=[5]))
        assert not Equality("n", "abc").matches(entry(n=[5]))

    def test_dn_valued(self):
        target = DN.parse("dc=att, dc=com")
        e = entry(ref=[target])
        assert Equality("ref", "dc=att, dc=com").matches(e)
        assert Equality("ref", target).matches(e)
        assert not Equality("ref", "dc=other").matches(e)

    def test_exists_semantics_any_value(self):
        # r |= F iff at least ONE pair satisfies F.
        assert Equality("cn", "b").matches(entry(cn=["a", "b", "c"]))


class TestSubstring:
    def test_contains(self):
        assert Substring("cn", "*ag*").matches(entry(cn=["jagadish"]))
        assert not Substring("cn", "*zz*").matches(entry(cn=["jagadish"]))

    def test_prefix_suffix(self):
        assert Substring("cn", "jag*").matches(entry(cn=["jagadish"]))
        assert Substring("cn", "*dish").matches(entry(cn=["jagadish"]))
        assert not Substring("cn", "dish*").matches(entry(cn=["jagadish"]))

    def test_multi_segment(self):
        assert Substring("cn", "j*d*h").matches(entry(cn=["jagadish"]))

    def test_requires_wildcard(self):
        with pytest.raises(FilterError):
            Substring("cn", "jag")

    def test_type_gate(self, schema):
        # tau(a) = string is required: an int attribute never matches.
        assert not Substring("n", "*5*").matches(entry(n=[55]), schema)

    def test_regex_metachars_are_literal(self):
        assert Substring("cn", "*a.c*").matches(entry(cn=["xa.cy"]))
        assert not Substring("cn", "*a.c*").matches(entry(cn=["xabcy"]))


class TestComparison:
    def test_all_operators(self):
        e = entry(n=[5])
        assert Comparison("n", "<", 6).matches(e)
        assert Comparison("n", "<=", 5).matches(e)
        assert Comparison("n", ">", 4).matches(e)
        assert Comparison("n", ">=", 5).matches(e)
        assert not Comparison("n", "<", 5).matches(e)

    def test_any_value_suffices(self):
        assert Comparison("n", "<", 3).matches(entry(n=[10, 1]))

    def test_non_int_values_ignored(self, schema):
        assert not Comparison("cn", "<", 3).matches(entry(cn=["abc"]), schema)

    def test_bad_operator(self):
        with pytest.raises(FilterError):
            Comparison("n", "==", 3)

    def test_bad_bound(self):
        with pytest.raises(FilterError):
            Comparison("n", "<", "many")


class TestBoolean:
    def test_and_or_not(self):
        e = entry(cn=["x"], n=[5])
        assert FilterAnd([Presence("cn"), Comparison("n", "<", 6)]).matches(e)
        assert not FilterAnd([Presence("cn"), Comparison("n", ">", 6)]).matches(e)
        assert FilterOr([Presence("zz"), Presence("cn")]).matches(e)
        assert FilterNot(Presence("zz")).matches(e)

    def test_empty_operands_rejected(self):
        with pytest.raises(FilterError):
            FilterAnd([])
        with pytest.raises(FilterError):
            FilterOr([])

    def test_str_forms(self):
        f = FilterAnd([Presence("cn"), FilterNot(Equality("n", 3))])
        assert str(f) == "(&(cn=*)(!(n=3)))"
