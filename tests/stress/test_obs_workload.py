"""Threaded hammers for the workload observability plane: the digest
table and heat map sit directly on the (parallel) search path, so their
counters must stay exact under concurrent updates from many threads."""

import threading

from repro.model.dn import DN
from repro.obs.digest import QueryDigestTable
from repro.obs.heatmap import SubtreeHeatMap
from repro.obs.history import MetricHistory
from repro.obs.metrics import MetricsRegistry

THREADS = 8
ROUNDS = 200


def _hammer(worker, count=THREADS):
    errors = []

    def guarded(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [
        threading.Thread(target=guarded, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestDigestHammer:
    def test_counts_are_exact_under_contention(self):
        table = QueryDigestTable(capacity=64)

        def worker(index):
            for round_ in range(ROUNDS):
                table.observe(
                    "k%d" % (round_ % 4), "(q%d)" % (round_ % 4),
                    0.001, pages=1, entries=2,
                    via="cache" if round_ % 2 else "engine", qerror=1.5,
                )

        _hammer(worker)
        total = THREADS * ROUNDS
        assert table.observed == total
        rows = table.top(10)
        assert len(rows) == 4
        assert sum(r.calls for r in rows) == total
        assert sum(r.pages_total for r in rows) == total
        assert sum(r.cache_hits for r in rows) == total // 2

    def test_eviction_churn_never_loses_the_observed_count(self):
        table = QueryDigestTable(capacity=4)

        def worker(index):
            for round_ in range(ROUNDS):
                table.observe("k%d-%d" % (index, round_), "(q)", 0.001)

        _hammer(worker)
        assert table.observed == THREADS * ROUNDS
        assert len(table) == 4
        assert table.evicted == THREADS * ROUNDS - 4


class TestHeatmapHammer:
    def test_lifetime_totals_are_exact_under_contention(self):
        heat = SubtreeHeatMap(depth=2, capacity=64, clock=lambda: 0.0)
        subtrees = [
            DN.parse("ou=t%d, dc=com" % index) for index in range(THREADS)
        ]

        def worker(index):
            base = subtrees[index]
            for _ in range(ROUNDS):
                heat.record_read(base, pages=2)
                heat.record_write(base)
                heat.record_shipped(base, entries=3)

        _hammer(worker)
        cells = heat.hottest(THREADS + 1)
        assert len(cells) == THREADS
        assert sum(c["reads_total"] for c in cells) == THREADS * ROUNDS
        assert sum(c["pages_total"] for c in cells) == THREADS * ROUNDS * 2
        assert sum(c["writes_total"] for c in cells) == THREADS * ROUNDS
        assert sum(c["shipped_total"] for c in cells) == THREADS * ROUNDS * 3

    def test_ranking_while_writers_run(self):
        heat = SubtreeHeatMap(depth=1, capacity=8, clock=lambda: 0.0)
        stop = threading.Event()

        def reader(_index):
            while not stop.is_set():
                heat.hottest(5)
                heat.snapshot(3)

        def writer(index):
            try:
                for round_ in range(ROUNDS):
                    heat.record_read(DN.parse("dc=d%d" % (round_ % 12)))
            finally:
                stop.set()

        readers = [
            threading.Thread(target=reader, args=(i,)) for i in range(2)
        ]
        for thread in readers:
            thread.start()
        _hammer(writer, count=4)
        stop.set()
        for thread in readers:
            thread.join()
        assert len(heat) == 8  # capacity held despite 12 distinct keys


class TestHistoryHammer:
    def test_concurrent_samplers_keep_the_ring_bounded(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total", "hits")
        history = MetricHistory(registry=registry, capacity=16)

        def worker(index):
            for _ in range(ROUNDS // 4):
                counter.inc()
                history.sample()
                history.rate("repro_hits_total", 60.0)

        _hammer(worker)
        assert history.taken == THREADS * (ROUNDS // 4)
        assert len(history) == 16
