"""Threaded hammers and seeded interleavings for the shared mutable
state the parallel scatter-gather exposes: metrics, the GreedyDual-Size
cache, the slow-query ring, and bracketed pager-stat snapshots.

Every test here failed (or could fail, given the right interleaving) on
the unlocked seed implementations; the invariants below are exactly the
ones the locks exist to protect.
"""

import random
import threading

from repro.cache import Footprint, QueryCache
from repro.model.dn import DN
from repro.model.entry import Entry
from repro.obs.metrics import MetricsRegistry, set_registry, use_registry
from repro.obs.slowlog import SlowQueryLog
from repro.storage.pager import Pager

THREADS = 8
COM_SUB = Footprint.subtree("dc=com")


def _hammer(worker, count=THREADS):
    """Run ``worker(index)`` on ``count`` threads, propagating the first
    worker exception to the caller."""
    errors = []

    def guarded(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [
        threading.Thread(target=guarded, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _entries(n, prefix):
    return [
        Entry(DN.parse("name=%s%d, dc=com" % (prefix, i)), ["node"], {})
        for i in range(n)
    ]


class TestMetricsHammer:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "hammered")
        per_thread = 10_000
        _hammer(lambda _i: [counter.inc() for _ in range(per_thread)])
        assert counter.value() == THREADS * per_thread

    def test_labelled_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", "hammered", labelnames=("kind",))
        per_thread = 5_000
        _hammer(
            lambda i: [
                counter.inc(kind="k%d" % (i % 2)) for _ in range(per_thread)
            ]
        )
        total = THREADS * per_thread
        assert counter.value(kind="k0") + counter.value(kind="k1") == total

    def test_get_or_create_race_returns_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(THREADS)

        def worker(_i):
            barrier.wait()
            seen.append(registry.counter("raced", "created concurrently"))

        _hammer(worker)
        assert len(seen) == THREADS
        assert all(instrument is seen[0] for instrument in seen)

    def test_registry_swap_does_not_strand_live_handles(self):
        with use_registry() as old:
            stranded = old.counter("kept", "created before the swap")
            stranded.inc(3)
            fresh = MetricsRegistry()
            previous = set_registry(fresh)
            assert previous is old
            # The live handle's instrument was adopted: same object, same
            # total, still exported by the new registry.
            assert fresh.get("kept") is stranded
            stranded.inc()
            assert fresh.get("kept").value() == 4


class TestCacheHammer:
    def test_seeded_interleavings_preserve_accounting(self):
        cache = QueryCache(byte_budget=4_000)
        payloads = {
            "k%d" % i: _entries(1 + i % 5, "p%d" % i) for i in range(16)
        }

        def worker(index):
            rng = random.Random(index)  # seeded: rerunnable interleavings
            keys = list(payloads)
            for _ in range(2_000):
                key = rng.choice(keys)
                action = rng.random()
                if action < 0.5:
                    cache.get(key)
                elif action < 0.9:
                    cache.put(
                        key, "(q)", payloads[key], COM_SUB,
                        cost_io=rng.randrange(1, 50),
                        tag="t%d" % (index % 2),
                    )
                elif action < 0.95:
                    cache.invalidate_tag("t%d" % (index % 2))
                else:
                    cache.invalidate(DN.parse("dc=com"), subtree=True)

        _hammer(worker)
        # The accounting survived: resident bytes equal the residents'
        # sizes (no double-counted admissions), within budget, and the
        # stats ledger balances.
        assert cache.resident_bytes == sum(e.size_bytes for e in cache)
        assert cache.resident_bytes <= 4_000
        stats = cache.stats
        assert stats.hits + stats.misses == stats.lookups
        departed = stats.evictions + stats.invalidations
        assert stats.insertions - departed >= len(cache) >= 0
        # The structure is still live, not wedged.
        cache.put("after", "(q)", _entries(1, "z"), COM_SUB, cost_io=1)
        assert cache.get("after") is not None


class TestSlowLogHammer:
    def test_ring_total_is_exact_and_bounded(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=32)
        per_thread = 3_000
        _hammer(
            lambda i: [
                log.record("q%d" % i, elapsed=1.0, io_total=j)
                for j in range(per_thread)
            ]
        )
        assert log.total == THREADS * per_thread
        assert len(log) == 32
        assert len(log.records()) == 32


class TestPagerSnapshotBracketing:
    def test_since_is_never_torn_under_parallel_traffic(self):
        pager = Pager(page_size=4, buffer_pages=2)
        pages = [pager.append_page([i]) for i in range(16)]
        stop = threading.Event()

        def reader(index):
            rng = random.Random(index)
            while not stop.is_set():
                pager.read(rng.choice(pages))

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            # Every bracketed delta must be internally consistent: a
            # physical read only ever happens inside a logical read, so a
            # torn snapshot (one counter from before an op, one from
            # after) would eventually show reads > logical_reads.
            for _ in range(500):
                before = pager.stats.snapshot()
                delta = pager.stats.since(before)
                assert 0 <= delta.reads <= delta.logical_reads
                assert delta.writes >= 0 and delta.logical_writes >= 0
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestAdminScrapeUnderLoad:
    def test_concurrent_metrics_scrapes_during_parallel_federated_queries(self):
        """The admin endpoint is a read-only view: hammering /metrics
        while a parallel federation answers queries must never tear the
        exposition, block the queries, or skew the counters."""
        import urllib.request

        from repro.dist import FederatedDirectory
        from repro.server import DirectoryService
        from repro.workload import random_instance

        registry = MetricsRegistry()
        instance = random_instance(31, size=120, forest_roots=2)
        roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
        assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
        fed = FederatedDirectory.partition(
            instance, assignments, page_size=8, leaf_cache_bytes=0,
            metrics=registry, max_workers=4,
        )
        service = DirectoryService(instance, metrics=registry)
        service.attach_federation(fed, "server0")
        service.bind_anonymous()
        queries = ["(%s ? sub ? objectClass=*)" % root for root in roots]
        server = service.serve_admin()
        scrapes = []
        searches_per_thread = 12
        try:
            url = server.url + "/metrics"

            def worker(index):
                if index < 4:  # query threads
                    for i in range(searches_per_thread):
                        result = service.search(queries[(index + i) % len(queries)])
                        assert result.code == "success"
                else:  # scrape threads
                    for _ in range(20):
                        with urllib.request.urlopen(url, timeout=10) as response:
                            assert response.status == 200
                            scrapes.append(response.read().decode("utf-8"))

            _hammer(worker)
        finally:
            server.stop()
            fed.close()
        # Every scrape was a complete, well-formed exposition document.
        assert len(scrapes) == (THREADS - 4) * 20
        for text in scrapes:
            assert text == "" or text.endswith("\n")
            for line in text.splitlines():
                assert line.startswith(("#", "repro_")) or " " in line
        # The counters never lost an increment to a concurrent scrape.
        searches = registry.get("repro_searches_total")
        assert searches.value(code="success") == 4 * searches_per_thread


class TestSnapshotIsolation:
    """Threaded writers against paged readers over the MVCC overlay.

    The write path keeps ``tag`` and ``weight`` in lockstep (tag "t<i>"
    always rides with weight ``i``): a reader observing a mismatched pair
    has seen a torn write, which snapshots make impossible.
    """

    def _directory(self):
        from repro.storage.maintenance import UpdatableDirectory
        from repro.workload import random_instance

        instance = random_instance(41, size=60)
        directory = UpdatableDirectory.from_instance(
            instance, page_size=8, auto_compact_at=64
        )
        root = next(iter(instance.roots())).dn
        return instance, directory, root

    def test_no_torn_reads_and_monotone_lsns(self):
        instance, directory, root = self._directory()
        writers = 3
        readers = THREADS - writers
        rounds = 40
        stop = threading.Event()

        def writer(index):
            dn = root.child("name=w%d" % index)
            directory.add(
                dn, ["node"], name="w%d" % index, tag="t0", weight=0
            )
            for i in range(1, rounds):
                directory.modify(
                    dn, replace={"tag": ["t%d" % i], "weight": [i]}
                )

        def reader(index):
            rng = random.Random(index)
            last_lsn = -1
            while not stop.is_set():
                with directory.acquire_view() as view:
                    # Views sampled over time never go backwards.
                    assert view.lsn >= last_lsn
                    last_lsn = view.lsn
                    for w in range(writers):
                        entry = view.lookup(root.child("name=w%d" % w))
                        if entry is None:
                            continue  # not added yet in this snapshot
                        (tag,) = entry.values("tag")
                        (weight,) = entry.values("weight")
                        assert tag == "t%d" % weight, (
                            "torn read: %s with weight %d" % (tag, weight)
                        )
                    # Re-reading inside the same view is stable even while
                    # writers advance the chain (repeatable read).
                    probe = root.child("name=w%d" % rng.randrange(writers))
                    first = view.lookup(probe)
                    again = view.lookup(probe)
                    assert (first is None) == (again is None)
                    if first is not None:
                        assert first.values("weight") == again.values("weight")

        def worker(index):
            if index < writers:
                writer(index)
            else:
                reader(index)

        reader_threads = []
        try:
            # Readers free-run while the writers hammer; _hammer joins the
            # writers, then we stop the readers.
            for i in range(writers, writers + readers):
                thread = threading.Thread(target=worker, args=(i,))
                thread.start()
                reader_threads.append(thread)
            _hammer(worker, count=writers)
        finally:
            stop.set()
            for thread in reader_threads:
                thread.join()
        # Every write got a distinct, dense lsn: nothing was lost or
        # double-assigned under contention.
        assert directory.head_lsn == writers * rounds

    def test_paged_scans_are_stable_under_writes(self):
        from repro.server import DirectoryService
        from repro.workload import random_instance

        instance = random_instance(43, size=80)
        service = DirectoryService(instance, page_size=8)
        service.bind_anonymous()
        root = next(iter(instance.roots())).dn
        stop = threading.Event()

        def writer(index):
            for i in range(30):
                code = service.add(
                    root.child("name=pg%d-%d" % (index, i)),
                    ["node"],
                    name="pg%d-%d" % (index, i),
                    kind="alpha",
                )
                assert code == "success"

        def reader(index):
            while not stop.is_set():
                seen = []
                for page in service.search_paged("( ? sub ? kind=*)", 16):
                    seen.extend(str(e.dn) for e in page)
                # A paged scan sees one snapshot: no duplicates and no
                # holes, even though writers landed entries between page
                # fetches.
                assert len(seen) == len(set(seen))

        def worker(index):
            if index < 2:
                writer(index)
            else:
                reader(index)

        reader_threads = []
        try:
            for i in range(2, 5):
                thread = threading.Thread(target=worker, args=(i,))
                thread.start()
                reader_threads.append(thread)
            _hammer(worker, count=2)
        finally:
            stop.set()
            for thread in reader_threads:
                thread.join()
        final = service.search("( ? sub ? kind=*)")
        dns = {str(e.dn) for e in final.entries}
        for index in range(2):
            for i in range(30):
                assert ("name=pg%d-%d, %s" % (index, i, root)) in dns

    def test_concurrent_compaction_never_breaks_readers(self):
        instance, directory, root = self._directory()
        stop = threading.Event()
        baseline = len(directory)

        def writer(index):
            for i in range(25):
                directory.add(
                    root.child("name=cc%d-%d" % (index, i)),
                    ["node"],
                    name="cc%d-%d" % (index, i),
                )

        def compactor(_index):
            while not stop.is_set():
                directory.compact()

        def reader(_index):
            while not stop.is_set():
                with directory.acquire_view() as view:
                    count = sum(1 for _ in view.store.scan_all())
                    assert count >= baseline  # adds only; never shrinks

        def worker(index):
            if index < 2:
                writer(index)
            elif index == 2:
                compactor(index)
            else:
                reader(index)

        background = []
        try:
            for i in range(2, 6):
                thread = threading.Thread(target=worker, args=(i,))
                thread.start()
                background.append(thread)
            _hammer(worker, count=2)
        finally:
            stop.set()
            for thread in background:
                thread.join()
        directory.compact()
        assert len(directory) == baseline + 2 * 25
        assert directory.compactions >= 1

    def test_maintenance_agent_under_write_load(self):
        from repro.txn.agent import MaintenanceAgent

        instance, directory, root = self._directory()
        agent = MaintenanceAgent()
        agent.start()
        directory.attach_maintenance(agent)
        try:
            def writer(index):
                for i in range(40):
                    directory.add(
                        root.child("name=ag%d-%d" % (index, i)),
                        ["node"],
                        name="ag%d-%d" % (index, i),
                    )

            _hammer(writer, count=4)
            agent.drain()
        finally:
            directory.detach_maintenance()
            agent.stop()
        assert agent.failures == 0
        # 160 adds over a 64-entry threshold: the agent compacted at
        # least once, off the writers' path.
        assert directory.compactions >= 1
        assert len(directory) == len(instance) + 4 * 40
