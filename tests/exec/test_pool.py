"""The worker pool's contract: ordered gather, inline fallbacks, error
barrier (see :mod:`repro.exec.pool`)."""

import threading
import time

import pytest

from repro.exec import WorkerPool


class TestConstruction:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_default_is_sequential(self):
        pool = WorkerPool()
        assert not pool.parallel
        assert pool.max_workers == 1

    def test_context_manager_closes(self):
        with WorkerPool(4) as pool:
            pool.map_ordered(lambda x: x, [1, 2, 3])
            assert pool._executor is not None
        assert pool._executor is None

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()


class TestInline:
    def test_single_worker_never_spawns_threads(self):
        pool = WorkerPool(1)
        main = threading.current_thread()
        seen = []
        result = pool.map_ordered(
            lambda x: seen.append(threading.current_thread()) or x * 2,
            range(5),
        )
        assert result == [0, 2, 4, 6, 8]
        assert all(t is main for t in seen)
        assert pool._executor is None
        assert pool.parallel_batches == 0

    def test_single_item_runs_inline_even_when_parallel(self):
        with WorkerPool(4) as pool:
            main = threading.current_thread()
            seen = []
            pool.map_ordered(lambda x: seen.append(threading.current_thread()), [1])
            assert seen == [main]
            assert pool.parallel_batches == 0

    def test_nested_batch_runs_inline_on_its_worker(self):
        # A task that fans out again must not block waiting for a slot in
        # the pool it is itself occupying.
        with WorkerPool(2) as pool:

            def inner(x):
                assert pool.in_task
                return x + 1

            def outer(x):
                return pool.map_ordered(inner, [x, x * 10])

            result = pool.map_ordered(outer, [1, 2, 3])
            assert result == [[2, 11], [3, 21], [4, 31]]
            # Only the outer batch fanned out.
            assert pool.parallel_batches == 1


class TestParallel:
    def test_gather_order_is_item_order(self):
        # Later items finish first; the gather must still be in item order.
        with WorkerPool(4) as pool:
            delays = [0.08, 0.04, 0.02, 0.01]

            def task(i):
                time.sleep(delays[i])
                return i

            assert pool.map_ordered(task, range(4)) == [0, 1, 2, 3]
            assert pool.parallel_batches == 1

    def test_actually_concurrent(self):
        with WorkerPool(4) as pool:
            barrier = threading.Barrier(4, timeout=5)
            # Four tasks can only pass a 4-party barrier if they overlap.
            pool.map_ordered(lambda _: barrier.wait(), range(4))

    def test_error_gather_waits_for_all_tasks(self):
        with WorkerPool(4) as pool:
            finished = []

            def task(i):
                if i == 0:
                    raise RuntimeError("boom-%d" % i)
                time.sleep(0.03)
                finished.append(i)
                return i

            with pytest.raises(RuntimeError, match="boom-0"):
                pool.map_ordered(task, range(4))
            # No task was abandoned mid-flight behind the barrier.
            assert sorted(finished) == [1, 2, 3]

    def test_first_error_in_item_order_wins(self):
        with WorkerPool(4) as pool:

            def task(i):
                if i >= 2:
                    raise RuntimeError("boom-%d" % i)
                return i

            with pytest.raises(RuntimeError, match="boom-2"):
                pool.map_ordered(task, range(4))
