"""Directory entries: multi-class, multi-valued, objectClass sync."""

import pytest

from repro.model.dn import DN
from repro.model.entry import Entry


def make(dn="cn=jag, dc=com", classes=("person",), **values):
    return Entry(DN.parse(dn), classes, {k: v for k, v in values.items()})


class TestConstruction:
    def test_empty_class_set_rejected(self):
        with pytest.raises(ValueError):
            Entry(DN.parse("cn=x"), [], {})

    def test_object_class_synced(self):
        entry = make(classes=("person", "TOPSSubscriber"))
        assert set(entry.values("objectClass")) == {"person", "TOPSSubscriber"}
        assert entry.classes == frozenset({"person", "TOPSSubscriber"})

    def test_object_class_values_cannot_be_overridden(self):
        entry = Entry(
            DN.parse("cn=x"), ["person"], {"objectClass": ["liar"]}
        )
        assert list(entry.values("objectClass")) == ["person"]

    def test_multivalued(self):
        entry = make(cn=["jag"], tag=["a", "b", "a"])
        assert entry.values("tag") == ("a", "b")  # duplicates removed

    def test_empty_value_list_means_absent(self):
        entry = make(cn=["jag"], tag=[])
        assert not entry.has("tag")


class TestAccess:
    def test_values_and_first(self):
        entry = make(cn=["jag"], n=[3, 1])
        assert entry.values("cn") == ("jag",)
        assert entry.first("n") == 3
        assert entry.first("missing") is None
        assert entry.values("missing") == ()

    def test_has(self):
        entry = make(cn=["jag"])
        assert entry.has("cn")
        assert not entry.has("phone")

    def test_pairs_sorted(self):
        entry = make(z=["1"], a=["2"])
        pairs = list(entry.pairs())
        assert pairs == sorted(pairs)

    def test_value_count(self):
        entry = make(cn=["a", "b"])
        assert entry.value_count("cn") == 2
        assert entry.value_count("x") == 0

    def test_attributes(self):
        entry = make(cn=["x"])
        assert entry.attributes() == ["cn", "objectClass"]


class TestSemantics:
    def test_rdn_consistent(self):
        good = make("cn=jag, dc=com", cn=["jag"])
        assert good.rdn_consistent()
        bad = make("cn=jag, dc=com", cn=["other"])
        assert not bad.rdn_consistent()

    def test_rdn_consistent_with_int_values(self):
        entry = make("n=5, dc=com", n=[5])
        assert entry.rdn_consistent()

    def test_equality_is_by_dn(self):
        a = make(cn=["jag"])
        b = make(cn=["different"])
        assert a == b
        assert hash(a) == hash(b)
        assert not a.same_content(b)

    def test_same_content(self):
        a = make(cn=["jag"], tag=["x", "y"])
        b = make(cn=["jag"], tag=["y", "x"])
        assert a.same_content(b)  # value order does not matter

    def test_with_values(self):
        entry = make(cn=["jag"])
        extended = entry.with_values(tag=["new"])
        assert extended.values("tag") == ("new",)
        assert not entry.has("tag")  # original untouched

    def test_pretty(self):
        text = make(cn=["jag"]).pretty()
        assert "cn: jag" in text
        assert "cn=jag, dc=com" in text
