"""Referential integrity auditing."""

import pytest

from repro.apps import qos
from repro.model.dn import DN
from repro.model.integrity import (
    find_dangling_references,
    reference_graph,
    referencing_entries,
)
from repro.workload import random_instance, synthetic_schema
from repro.model.instance import DirectoryInstance


class TestGeneratedInstances:
    def test_generator_produces_no_dangling_refs(self):
        instance = random_instance(5, size=80, ref_density=1.0)
        assert find_dangling_references(instance) == []

    def test_deleting_a_target_dangles(self):
        instance = random_instance(5, size=80, ref_density=1.0)
        # Find a referenced leaf and remove it.
        graph = reference_graph(instance)
        target = next(iter(graph.values()))[0]
        while any(True for _ in instance.children_of(target)):
            target = next(iter(instance.children_of(target))).dn
        referrers = referencing_entries(instance, target)
        instance.remove(target, recursive=True)
        dangling = find_dangling_references(instance)
        if referrers:
            assert any(t == target for _dn, _attr, t in dangling)

    def test_attribute_restriction(self):
        instance = random_instance(6, size=50, ref_density=1.0)
        assert find_dangling_references(instance, attributes=["name"]) == []


class TestQoSFragment:
    def test_paper_fragment_is_closed(self):
        directory = qos.build_paper_fragment()
        assert find_dangling_references(directory.instance) == []

    def test_removed_action_detected(self):
        directory = qos.build_paper_fragment()
        action_dn = DN.parse(
            "DSActionName=denyAll, ou=SLADSAction, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        )
        referrers = referencing_entries(directory.instance, action_dn)
        assert any(attr == "SLADSActRef" for _dn, attr in referrers)
        directory.instance.remove(action_dn)
        dangling = find_dangling_references(directory.instance)
        assert any(target == action_dn for _dn, _attr, target in dangling)

    def test_reference_graph_shape(self):
        directory = qos.build_paper_fragment()
        graph = reference_graph(directory.instance)
        dso = DN.parse(
            "SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        )
        # dso references 2 profiles + 2 periods + 1 action + 2 exceptions.
        assert len(graph[dso]) == 7


class TestStringEncodedReferences:
    """dn-valued data may arrive as strings (e.g. via LDIF): the engine's
    vd/dv must handle both representations."""

    def test_vd_matches_string_refs(self):
        schema = synthetic_schema()
        instance = DirectoryInstance(schema)
        instance.add("name=a", ["node"], name="a")
        instance.add("name=b, name=a", ["node"], name="b")
        # ref coerced through the schema to a DN even when given as str.
        entry = instance.add(
            "name=c, name=a", ["node"], name="c", ref=["name=b, name=a"]
        )
        assert isinstance(entry.first("ref"), DN)
        from repro.engine import QueryEngine

        engine = QueryEngine.from_instance(instance, page_size=4)
        result = engine.run(
            "(vd ( ? sub ? name=c) ( ? sub ? name=b) ref)"
        )
        assert result.dns() == ["name=c, name=a"]
