"""Type system: domains, coercion, registry."""

import pytest

from repro.model.dn import DN
from repro.model.types import (
    DN_TYPE,
    INT,
    STRING,
    AttributeType,
    TypeError_,
    TypeRegistry,
    default_registry,
)


class TestBuiltins:
    def test_string_contains(self):
        assert STRING.contains("abc")
        assert not STRING.contains(5)

    def test_string_coerce(self):
        assert STRING.coerce(5) == "5"
        assert STRING.coerce("x") == "x"

    def test_int_contains(self):
        assert INT.contains(5)
        assert not INT.contains("5")
        assert not INT.contains(True)  # bools are not directory ints

    def test_int_coerce(self):
        assert INT.coerce("42") == 42
        assert INT.coerce(7) == 7
        with pytest.raises(TypeError_):
            INT.coerce("abc")
        with pytest.raises(TypeError_):
            INT.coerce(True)

    def test_dn_coerce(self):
        dn = DN_TYPE.coerce("dc=att, dc=com")
        assert isinstance(dn, DN)
        assert dn == DN.parse("dc=att, dc=com")
        assert DN_TYPE.coerce(dn) is dn
        with pytest.raises(TypeError_):
            DN_TYPE.coerce(5)


class TestRegistry:
    def test_defaults_present(self):
        registry = default_registry()
        for name in ("string", "int", "distinguishedName"):
            assert name in registry
            assert registry.get(name).name == name

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            default_registry().get("nosuch")

    def test_register_custom(self):
        registry = TypeRegistry()
        phone = AttributeType(
            "telephoneNumber",
            contains=lambda v: isinstance(v, str) and v.replace("-", "").isdigit(),
            coerce=str,
        )
        registry.register(phone)
        assert registry.get("telephoneNumber").coerce("973-360") == "973-360"
        with pytest.raises(TypeError_):
            registry.get("telephoneNumber").coerce("not-a-phone")

    def test_register_conflict(self):
        registry = TypeRegistry()
        other = AttributeType("string", contains=lambda v: True)
        with pytest.raises(ValueError):
            registry.register(other)

    def test_names_sorted(self):
        names = TypeRegistry().names()
        assert names == sorted(names)
