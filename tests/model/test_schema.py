"""Directory schemas (Definition 3.1)."""

import pytest

from repro.model.schema import OBJECT_CLASS, DirectorySchema, SchemaError


@pytest.fixture
def schema():
    s = DirectorySchema()
    s.add_attribute("cn", "string")
    s.add_attribute("priority", "int")
    s.add_attribute("ref", "distinguishedName")
    s.add_class("thing", {"cn", "priority"})
    return s


class TestDeclaration:
    def test_object_class_always_present(self):
        s = DirectorySchema()
        assert OBJECT_CLASS in s.attributes
        assert s.type_name_of(OBJECT_CLASS) == "string"

    def test_attribute_types_shared_across_classes(self, schema):
        # Re-declaring with the same type is fine...
        schema.add_attribute("cn", "string")
        # ...but changing the type is not: tau is class-independent.
        with pytest.raises(SchemaError):
            schema.add_attribute("cn", "int")

    def test_unknown_type_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_attribute("x", "floatish")

    def test_empty_names_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_attribute("", "string")
        with pytest.raises(SchemaError):
            schema.add_class("", set())

    def test_class_requires_declared_attributes(self, schema):
        with pytest.raises(SchemaError) as err:
            schema.add_class("bad", {"undeclared"})
        assert "undeclared" in str(err.value)

    def test_class_redeclaration_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_class("thing", {"cn"})

    def test_object_class_implicitly_allowed(self, schema):
        assert OBJECT_CLASS in schema.allowed_attributes("thing")


class TestAccessors:
    def test_components(self, schema):
        assert schema.classes == {"thing"}
        assert {"cn", "priority", "ref", OBJECT_CLASS} <= schema.attributes

    def test_type_of(self, schema):
        assert schema.type_of("priority").name == "int"
        with pytest.raises(SchemaError):
            schema.type_of("missing")

    def test_allowed_attributes(self, schema):
        assert "cn" in schema.allowed_attributes("thing")
        with pytest.raises(SchemaError):
            schema.allowed_attributes("missing")

    def test_attribute_allowed_for(self, schema):
        assert schema.attribute_allowed_for("cn", ["thing"])
        assert not schema.attribute_allowed_for("ref", ["thing"])
        # Union semantics: allowed if ANY class admits it.
        schema.add_class("other", {"ref"})
        assert schema.attribute_allowed_for("ref", ["thing", "other"])

    def test_coerce_value(self, schema):
        assert schema.coerce_value("priority", "7") == 7
