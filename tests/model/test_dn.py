"""DN/RDN algebra: parsing, escaping, ordering, hierarchy tests."""

import pytest
from hypothesis import given, strategies as st

from repro.model.dn import (
    DN,
    ROOT_DN,
    RDN,
    DNSyntaxError,
    escape_value,
    unescape_value,
)


class TestRDN:
    def test_single(self):
        rdn = RDN.single("dc", "com")
        assert rdn.canonical() == "dc=com"
        assert ("dc", "com") in rdn
        assert len(rdn) == 1

    def test_parse_multi_valued(self):
        rdn = RDN.parse("cn=jag+uid=17")
        assert len(rdn) == 2
        assert rdn.canonical() == "cn=jag+uid=17"

    def test_multi_valued_order_independent(self):
        assert RDN.parse("a=1+b=2") == RDN.parse("b=2+a=1")
        assert hash(RDN.parse("a=1+b=2")) == hash(RDN.parse("b=2+a=1"))

    def test_empty_rejected(self):
        with pytest.raises(DNSyntaxError):
            RDN([])

    def test_missing_equals_rejected(self):
        with pytest.raises(DNSyntaxError):
            RDN.parse("justaname")

    def test_empty_attribute_rejected(self):
        with pytest.raises(DNSyntaxError):
            RDN.parse("=value")

    def test_escaped_separator_in_value(self):
        rdn = RDN.parse(r"cn=doe\, john")
        assert ("cn", "doe, john") in rdn

    def test_attributes_iteration(self):
        rdn = RDN.parse("a=1+b=2")
        assert sorted(rdn.attributes()) == ["a", "b"]

    def test_ordering_by_canonical(self):
        assert RDN.parse("a=1") < RDN.parse("b=1")


class TestEscaping:
    @given(st.text(min_size=0, max_size=30))
    def test_roundtrip(self, value):
        assert unescape_value(escape_value(value)) == value

    def test_special_chars_escaped(self):
        assert escape_value("a,b") == r"a\,b"
        assert escape_value("a=b+c") == r"a\=b\+c"

    def test_dangling_escape_rejected(self):
        with pytest.raises(DNSyntaxError):
            unescape_value("abc\\")


class TestDNBasics:
    def test_parse_and_str_roundtrip(self):
        text = "dc=research, dc=att, dc=com"
        dn = DN.parse(text)
        assert str(dn) == text
        assert DN.parse(str(dn)) == dn

    def test_empty_is_root(self):
        assert DN.parse("") == ROOT_DN
        assert ROOT_DN.is_null()
        assert ROOT_DN.depth() == 0

    def test_rdn_and_parent(self):
        dn = DN.parse("a=1, b=2, c=3")
        assert dn.rdn == RDN.parse("a=1")
        assert dn.parent == DN.parse("b=2, c=3")
        assert dn.depth() == 3

    def test_root_has_no_rdn_or_parent(self):
        with pytest.raises(ValueError):
            _ = ROOT_DN.rdn
        with pytest.raises(ValueError):
            _ = ROOT_DN.parent

    def test_child(self):
        base = DN.parse("dc=com")
        assert base.child("dc=att") == DN.parse("dc=att, dc=com")
        assert base.child(RDN.single("dc", "att")) == DN.parse("dc=att, dc=com")

    def test_of(self):
        assert DN.of("dc=att", "dc=com") == DN.parse("dc=att, dc=com")

    def test_ancestors(self):
        dn = DN.parse("a=1, b=2, c=3")
        assert [str(a) for a in dn.ancestors()] == ["b=2, c=3", "c=3"]

    def test_value_with_comma_roundtrips(self):
        dn = ROOT_DN.child(RDN([("cn", "doe, john")]))
        assert DN.parse(str(dn)) == dn


class TestHierarchy:
    def test_parent_child(self):
        parent = DN.parse("dc=att, dc=com")
        child = DN.parse("dc=research, dc=att, dc=com")
        assert parent.is_parent_of(child)
        assert child.is_child_of(parent)
        assert not child.is_parent_of(parent)
        assert not parent.is_parent_of(parent)

    def test_ancestor_proper(self):
        top = DN.parse("dc=com")
        deep = DN.parse("x=1, dc=att, dc=com")
        assert top.is_ancestor_of(deep)
        assert deep.is_descendant_of(top)
        assert not top.is_ancestor_of(top)

    def test_root_is_ancestor_of_everything(self):
        assert ROOT_DN.is_ancestor_of(DN.parse("dc=com"))
        assert ROOT_DN.is_prefix_of(DN.parse("a=1, b=2"))

    def test_sibling_not_related(self):
        a = DN.parse("dc=a, dc=com")
        b = DN.parse("dc=b, dc=com")
        assert not a.is_ancestor_of(b)
        assert not b.is_ancestor_of(a)
        assert not a.is_prefix_of(b)

    def test_similar_prefix_strings_not_confused(self):
        # "dc=ab" is NOT an ancestor of "dc=abc..." even though the string
        # is a prefix: keys are per-RDN, not per-character.
        a = DN.parse("dc=ab")
        b = DN.parse("x=1, dc=abc")
        assert not a.is_ancestor_of(b)


# -- hypothesis: the reverse-dn key order has exactly the properties the
# -- paper's algorithms need.

_rdn = st.tuples(
    st.sampled_from(["dc", "ou", "cn"]),
    st.text(alphabet="abcz019,=+\\", min_size=1, max_size=4),
)
_dn = st.lists(_rdn, min_size=0, max_size=5).map(
    lambda pairs: DN([RDN([p]) for p in pairs])
)


@given(_dn, _dn)
def test_key_prefix_iff_ancestor_or_self(a, b):
    is_prefix = a.key() == b.key()[: len(a.key())] and len(a.key()) <= len(b.key())
    assert a.is_prefix_of(b) == is_prefix
    assert a.is_ancestor_of(b) == (is_prefix and a.depth() < b.depth())


@given(_dn, _dn)
def test_ancestor_sorts_before_descendant(a, b):
    if a.is_ancestor_of(b):
        assert a.key() < b.key()


@given(st.lists(_dn, min_size=1, max_size=12))
def test_subtrees_contiguous_in_sorted_order(dns):
    ordered = sorted(set(dns), key=lambda dn: dn.key())
    for base in ordered:
        inside = [dn for dn in ordered if base.is_prefix_of(dn)]
        positions = [ordered.index(dn) for dn in inside]
        assert positions == list(range(min(positions), max(positions) + 1))


@given(_dn, _dn)
def test_total_order_consistent_with_equality(a, b):
    assert (a == b) == (a.key() == b.key())
    assert (a < b) == (a.key() < b.key())
