"""Directory instances: the forest, validation, hierarchy navigation."""

import pytest

from repro.model.dn import DN, ROOT_DN
from repro.model.instance import DirectoryInstance, InstanceError
from repro.model.schema import DirectorySchema, SchemaError


@pytest.fixture
def schema():
    s = DirectorySchema()
    s.add_attribute("dc", "string")
    s.add_attribute("cn", "string")
    s.add_attribute("n", "int")
    s.add_attribute("ref", "distinguishedName")
    s.add_class("dcObject", {"dc"})
    s.add_class("person", {"cn", "n", "ref"})
    return s


@pytest.fixture
def inst(schema):
    i = DirectoryInstance(schema)
    i.add("dc=com", ["dcObject"], dc="com")
    i.add("dc=att, dc=com", ["dcObject"], dc="att")
    i.add("cn=jag, dc=att, dc=com", ["person"], cn="jag", n=5)
    i.add("cn=div, dc=att, dc=com", ["person"], cn="div")
    return i


class TestAdd:
    def test_dn_is_key(self, inst):
        with pytest.raises(InstanceError):
            inst.add("dc=com", ["dcObject"], dc="com")

    def test_null_dn_rejected(self, inst):
        with pytest.raises(InstanceError):
            inst.add(ROOT_DN, ["dcObject"], dc="x")

    def test_rdn_must_be_in_val(self, inst):
        with pytest.raises(InstanceError):
            inst.add("cn=ghost, dc=com", ["person"], cn="someone-else")

    def test_undeclared_class(self, inst):
        with pytest.raises(SchemaError):
            inst.add("cn=x, dc=com", ["martian"], cn="x")

    def test_attribute_must_be_allowed_by_some_class(self, inst):
        with pytest.raises(SchemaError):
            inst.add("dc=net", ["dcObject"], dc="net", cn="oops")

    def test_values_coerced(self, inst):
        entry = inst.add("cn=z, dc=com", ["person"], cn="z", n="42")
        assert entry.values("n") == (42,)

    def test_dn_valued_attribute(self, inst):
        target = DN.parse("cn=jag, dc=att, dc=com")
        entry = inst.add("cn=r, dc=com", ["person"], cn="r", ref=[str(target)])
        assert entry.values("ref") == (target,)

    def test_forest_allows_orphans_by_default(self, inst):
        inst.add("cn=lone, dc=unseen, dc=org", ["person"], cn="lone")
        assert len(inst) == 5

    def test_require_parents(self, schema):
        strict = DirectoryInstance(schema, require_parents=True)
        strict.add("dc=com", ["dcObject"], dc="com")
        with pytest.raises(InstanceError):
            strict.add("cn=x, dc=org", ["person"], cn="x")
        strict.add("cn=x, dc=com", ["person"], cn="x")


class TestRemove:
    def test_remove_leaf(self, inst):
        assert inst.remove("cn=jag, dc=att, dc=com") == 1
        assert inst.get("cn=jag, dc=att, dc=com") is None

    def test_remove_inner_requires_recursive(self, inst):
        with pytest.raises(InstanceError):
            inst.remove("dc=att, dc=com")
        removed = inst.remove("dc=att, dc=com", recursive=True)
        assert removed == 3
        assert len(inst) == 1

    def test_remove_missing(self, inst):
        with pytest.raises(InstanceError):
            inst.remove("cn=nobody, dc=com")


class TestNavigation:
    def test_iteration_sorted(self, inst):
        keys = [entry.dn.key() for entry in inst]
        assert keys == sorted(keys)

    def test_children_of(self, inst):
        names = sorted(str(e.dn.rdn) for e in inst.children_of("dc=att, dc=com"))
        assert names == ["cn=div", "cn=jag"]

    def test_descendants_of(self, inst):
        assert len(list(inst.descendants_of("dc=com"))) == 3
        assert len(list(inst.subtree("dc=com"))) == 4

    def test_parent_of(self, inst):
        child = inst.get("cn=jag, dc=att, dc=com")
        parent = inst.parent_of(child)
        assert parent.dn == DN.parse("dc=att, dc=com")
        root = inst.get("dc=com")
        assert inst.parent_of(root) is None

    def test_roots(self, inst):
        inst.add("cn=lone, dc=unseen, dc=org", ["person"], cn="lone")
        roots = sorted(str(e.dn) for e in inst.roots())
        assert roots == ["cn=lone, dc=unseen, dc=org", "dc=com"]

    def test_subtree_of_null_dn_is_everything(self, inst):
        assert len(list(inst.subtree(ROOT_DN))) == len(inst)


class TestValidate:
    def test_clean_instance(self, inst):
        assert inst.validate() == []

    def test_add_entry_revalidates(self, inst):
        entry = inst.get("cn=jag, dc=att, dc=com")
        other = DirectoryInstance(inst.schema)
        other.add_entry(entry)
        assert other.get(entry.dn).same_content(entry)
