"""LDIF serialisation round-trips."""

import io

import pytest

from repro.model.dn import DN
from repro.model.ldif import LDIFError, dump_ldif, dumps_ldif, load_ldif, loads_ldif
from repro.model.standard import standard_schema
from repro.workload import random_instance, synthetic_schema


class TestDump:
    def test_basic_shape(self):
        schema = standard_schema()
        from repro.model.instance import DirectoryInstance

        inst = DirectoryInstance(schema)
        inst.add("dc=com", ["dcObject"], dc="com")
        inst.add("ou=x, dc=com", ["organizationalUnit"], ou="x",
                 description="a unit")
        text = dumps_ldif(inst)
        assert "dn: dc=com" in text
        assert "objectClass: dcObject" in text
        assert "description: a unit" in text
        assert text.count("dn:") == 2

    def test_base64_for_awkward_values(self):
        schema = standard_schema()
        from repro.model.instance import DirectoryInstance

        inst = DirectoryInstance(schema)
        inst.add("dc=com", ["dcObject"], dc="com")
        inst.add(
            "ou=x, dc=com", ["organizationalUnit"], ou="x",
            description=" leading space",
        )
        text = dumps_ldif(inst)
        assert "description:: " in text

    def test_empty_instance(self):
        from repro.model.instance import DirectoryInstance

        assert dumps_ldif(DirectoryInstance(synthetic_schema())) == ""


class TestRoundtrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        original = random_instance(seed, size=60)
        text = dumps_ldif(original)
        reloaded = loads_ldif(text, synthetic_schema())
        assert len(reloaded) == len(original)
        for left, right in zip(original, reloaded):
            assert left.dn == right.dn
            assert left.classes == right.classes
            # values compare as strings (ints/dns re-typed through schema)
            for attr in left.attributes():
                assert sorted(map(str, left.values(attr))) == sorted(
                    map(str, right.values(attr))
                ), attr

    def test_types_restored(self):
        original = random_instance(2, size=40, ref_density=1.0)
        reloaded = loads_ldif(dumps_ldif(original), synthetic_schema())
        entry = next(e for e in reloaded if e.has("weight"))
        assert isinstance(entry.first("weight"), int)
        entry = next(e for e in reloaded if e.has("ref"))
        assert isinstance(entry.first("ref"), DN)

    def test_stream_api(self):
        original = random_instance(3, size=30)
        buffer = io.StringIO()
        dump_ldif(original, buffer)
        buffer.seek(0)
        reloaded = load_ldif(buffer, synthetic_schema())
        assert len(reloaded) == len(original)


class TestParsing:
    def test_comments_and_continuations(self):
        # A leading-space line continues the previous logical line, so the
        # folded value joins "co" + "m" = "com".
        text = "# a comment\ndn: dc=com\nobjectClass: dcObject\ndc: co\n m\n"
        inst = loads_ldif(text, standard_schema())
        assert inst.get("dc=com").first("dc") == "com"

    def test_out_of_order_records(self):
        text = (
            "dn: ou=x, dc=com\nobjectClass: organizationalUnit\nou: x\n"
            "\n"
            "dn: dc=com\nobjectClass: dcObject\ndc: com\n"
        )
        inst = loads_ldif(text, standard_schema(), require_parents=True)
        assert len(inst) == 2

    def test_missing_dn(self):
        with pytest.raises(LDIFError):
            loads_ldif("objectClass: dcObject\ndc: com\n", standard_schema())

    def test_missing_object_class(self):
        with pytest.raises(LDIFError):
            loads_ldif("dn: dc=com\ndc: com\n", standard_schema())

    def test_missing_colon(self):
        with pytest.raises(LDIFError):
            loads_ldif("dn: dc=com\nobjectClass dcObject\n", standard_schema())

    def test_bad_base64(self):
        with pytest.raises(LDIFError):
            loads_ldif(
                "dn: dc=com\nobjectClass: dcObject\ndc:: !!!\n", standard_schema()
            )
