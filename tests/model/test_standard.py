"""The standard (Netscape-style) schema."""

import pytest

from repro.model.instance import DirectoryInstance
from repro.model.standard import standard_schema, telephone_number_type
from repro.model.types import TypeError_


class TestTelephoneType:
    def test_accepts_phone_shapes(self):
        phone = telephone_number_type()
        for value in ("9733608776", "+1-973-360-8776", "973 360 8776"):
            assert phone.coerce(value) == value

    def test_rejects_non_phones(self):
        phone = telephone_number_type()
        for value in ("not-a-phone", "", "12a34"):
            with pytest.raises(TypeError_):
                phone.coerce(value)


class TestStandardSchema:
    def test_paper_classes_present(self):
        schema = standard_schema()
        for class_name in (
            "dcObject", "domain", "organizationalUnit",
            "inetOrgPerson", "organizationalPerson", "person",
        ):
            assert schema.has_class(class_name), class_name

    def test_multi_class_entry_like_section_3_5(self):
        """An entry can be inetOrgPerson without subclass gymnastics and
        use the union of allowed attributes."""
        schema = standard_schema()
        inst = DirectoryInstance(schema)
        inst.add("dc=com", ["dcObject"], dc="com")
        entry = inst.add(
            "uid=jag, dc=com",
            ["inetOrgPerson", "person"],
            uid="jag",
            commonName="h jagadish",
            surName="jagadish",
            telephoneNumber="9733608776",
            seeAlso=["dc=com"],  # allowed via person
        )
        assert entry.first("telephoneNumber") == "9733608776"

    def test_dn_valued_attributes(self):
        schema = standard_schema()
        assert schema.type_name_of("manager") == "distinguishedName"
        assert schema.type_name_of("member") == "distinguishedName"

    def test_open_for_extension(self):
        schema = standard_schema()
        schema.add_attribute("myAttr", "int")
        schema.add_class("myClass", {"myAttr", "commonName"})
        assert schema.has_class("myClass")
