"""Attribute projection of results."""

from repro.model.dn import DN
from repro.model.entry import Entry
from repro.model.projection import project, project_entry


def make_entry():
    return Entry(
        DN.parse("uid=jag, dc=com"),
        ["inetOrgPerson"],
        {
            "uid": ["jag"],
            "commonName": ["h jagadish"],
            "telephoneNumber": ["9733608776"],
            "mail": ["jag@att.com"],
        },
    )


class TestProjectEntry:
    def test_keeps_selected(self):
        projected = project_entry(make_entry(), ["mail"])
        assert projected.has("mail")
        assert not projected.has("telephoneNumber")
        assert not projected.has("commonName")

    def test_always_keeps_object_class_and_rdn(self):
        projected = project_entry(make_entry(), ["mail"])
        assert projected.values("objectClass") == ("inetOrgPerson",)
        assert projected.has("uid")  # rdn attribute survives
        assert projected.rdn_consistent()

    def test_empty_selection_means_all(self):
        entry = make_entry()
        assert project_entry(entry, []) is entry

    def test_unknown_attribute_ignored(self):
        projected = project_entry(make_entry(), ["nosuch"])
        assert projected.attributes() == ["objectClass", "uid"]

    def test_dn_preserved(self):
        projected = project_entry(make_entry(), ["mail"])
        assert projected.dn == make_entry().dn


class TestProjectMany:
    def test_projects_every_entry(self):
        entries = [make_entry(), make_entry()]
        projected = project(entries, ["commonName"])
        assert all(e.has("commonName") for e in projected)
        assert all(not e.has("mail") for e in projected)
