"""End-to-end integration: LDIF in, service on top, the paper's queries,
online mutation, LDIF out -- every layer in one flow."""

import pytest

from repro.apps import qos
from repro.model.ldif import dumps_ldif, loads_ldif
from repro.query.builder import Q
from repro.security import AccessControlList
from repro.server import DirectoryService, ResultCode


@pytest.fixture
def service():
    # 1. Build the Figure 12 directory, round-trip it through LDIF (the
    #    interchange path), and serve the reloaded image.
    original = qos.build_paper_fragment()
    text = dumps_ldif(original.instance)
    reloaded = loads_ldif(text, qos.qos_schema())
    assert len(reloaded) == len(original.instance)
    return DirectoryService(reloaded, page_size=8)


POLICIES = "dc=research, dc=att, dc=com"


class TestEndToEnd:
    def test_paper_query_on_reloaded_data(self, service):
        result = service.search(
            "(g (%s ? sub ? objectClass=SLAPolicyRules) count(SLAPVPRef) > 1)"
            % POLICIES
        )
        assert result.code == ResultCode.SUCCESS
        assert result.dns() == [
            "SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        ]

    def test_builder_l3_on_reloaded_data(self, service):
        policies = Q.sub(POLICIES, "objectClass=SLAPolicyRules")
        smtp_profiles = Q.sub(POLICIES, "SourcePort=25") & Q.sub(
            POLICIES, "objectClass=trafficProfile"
        )
        result = service.search(policies.referencing(smtp_profiles, "SLATPRef"))
        assert result.dns() == [
            "SLAPolicyName=mail, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        ]

    def test_mutate_then_requery(self, service):
        # 2. Add a new higher-priority policy online...
        actions_dn = "ou=SLADSAction, ou=networkPolicies, " + POLICIES
        code = service.add(
            "DSActionName=throttle, %s" % actions_dn,
            ["SLADSAction"], DSActionName="throttle", DSPermission="Permit",
            DSInProfilePeakRate=1,
        )
        assert code == ResultCode.SUCCESS
        code = service.add(
            "SLAPolicyName=urgent, ou=SLAPolicyRules, ou=networkPolicies, "
            + POLICIES,
            ["SLAPolicyRules"],
            SLAPolicyName="urgent",
            SLARulePriority=1,
            SLADSActRef=["DSActionName=throttle, %s" % actions_dn],
        )
        assert code == ResultCode.SUCCESS
        # 3. ...and the L2 minimum-priority query immediately sees it.
        result = service.search(
            "(g (%s ? sub ? objectClass=SLAPolicyRules)"
            " min(SLARulePriority)=min(min(SLARulePriority)))" % POLICIES
        )
        assert result.dns() == [
            "SLAPolicyName=urgent, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        ]

    def test_modify_shifts_aggregate_answer(self, service):
        dso = (
            "SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
            + POLICIES
        )
        assert service.modify(dso, replace={"SLARulePriority": [1]}) == ResultCode.SUCCESS
        result = service.search(
            "(g (%s ? sub ? objectClass=SLAPolicyRules)"
            " min(SLARulePriority)=min(min(SLARulePriority)))" % POLICIES
        )
        assert result.dns() == [dso]

    def test_dump_after_mutation_roundtrips(self, service):
        service.delete(
            "SLAPolicyName=fatt, ou=SLAPolicyRules, ou=networkPolicies, "
            + POLICIES
        )
        service.directory.compact()
        # 4. Dump the live image and reload it: identical content.
        instance = _as_instance(service)
        text = dumps_ldif(instance)
        again = loads_ldif(text, qos.qos_schema())
        assert [str(e.dn) for e in again] == [str(e.dn) for e in instance]

    def test_acl_layer_composes(self):
        original = qos.build_paper_fragment()
        acl = AccessControlList(default_allow=False)
        acl.allow("*", "ou=trafficProfile, ou=networkPolicies, " + POLICIES)
        guarded = DirectoryService(original.instance, acl=acl, page_size=8)
        result = guarded.search("( ? sub ? objectClass=*)")
        assert result.dns() and all("ou=trafficProfile" in dn for dn in result.dns())


def _as_instance(service):
    """Rebuild a logical instance from the service's current store."""
    from repro.model.instance import DirectoryInstance

    instance = DirectoryInstance(service.directory.schema)
    for entry in service.directory.store.scan_all():
        instance.add_entry(entry)
    return instance
