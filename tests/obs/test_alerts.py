"""The alert engine: the rule grammar, default rules, and the
firing/resolved state machine -- deterministic under an injected clock."""

import pytest

from repro.obs.alerts import (
    AlertEngine,
    RateRule,
    RatioRule,
    ThresholdRule,
    default_rules,
    parse_rule,
)
from repro.obs.history import MetricHistory
from repro.obs.log import CapturingLogger
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestGrammar:
    def test_quantile_threshold(self):
        rule = parse_rule("p95(repro_planner_qerror) > 4")
        assert isinstance(rule, ThresholdRule)
        assert rule.field == "p95" and rule.op == ">" and rule.threshold == 4.0
        assert rule.condition() == "p95(repro_planner_qerror) > 4"

    def test_agg_threshold(self):
        rule = parse_rule("max(repro_replication_lag_records) > 8")
        assert isinstance(rule, ThresholdRule) and rule.agg == "max"

    def test_rate_with_for_clause(self):
        rule = parse_rule("rate(repro_searches_total, 60) > 100 for 2")
        assert isinstance(rule, RateRule)
        assert rule.window_s == 60.0 and rule.for_samples == 2

    def test_ratio_with_min_denominator(self):
        rule = parse_rule(
            "repro_cache_lookups_total{outcome=hit} / total < 0.5 min 20"
        )
        assert isinstance(rule, RatioRule)
        assert rule.numerator_labels == {"outcome": "hit"}
        assert rule.min_denominator == 20.0

    def test_bare_metric_threshold_with_labels(self):
        rule = parse_rule("repro_searches_total{code=error} >= 1")
        assert isinstance(rule, ThresholdRule)
        assert rule.labels == {"code": "error"} and rule.op == ">="

    @pytest.mark.parametrize("bad", [
        "not a rule",
        "rate(repro_x) > 1",            # rate needs a window
        "p95(repro_x, 60) > 1",         # only rate takes a window
        "repro_x > 1 min 5",            # min is ratio-only
        "vibes(repro_x) > 1",           # unknown function
        "repro_x / total < 0.5",        # ratio needs numerator labels
    ])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_rule(bad)

    def test_default_rules_cover_planner_replication_and_cache(self):
        names = {rule.name for rule in default_rules()}
        assert names == {
            "planner-qerror-p95", "replication-lag", "cache-hit-rate-floor",
        }


class TestStateMachine:
    def _stack(self, rules, **engine_kw):
        registry = MetricsRegistry()
        clock = FakeClock()
        history = MetricHistory(registry=registry, capacity=16, clock=clock)
        engine = AlertEngine(history, rules, metrics=MetricsRegistry(),
                             **engine_kw)
        gauge = registry.gauge("repro_lag", "lag")
        return clock, history, engine, gauge

    def test_fires_after_for_samples_consecutive_breaches(self):
        clock, history, engine, gauge = self._stack(
            [ThresholdRule("lag", "repro_lag", ">", 5, for_samples=2)]
        )
        gauge.set(9)
        history.sample()
        assert engine.evaluate() == []          # streak 1 of 2: pending
        assert engine.firing() == []
        clock.now = 1.0
        history.sample()
        changed = engine.evaluate()             # streak 2: fires
        assert [t["to"] for t in changed] == ["firing"]
        assert engine.firing()[0]["name"] == "lag"
        assert changed[0]["ts"] == 1.0          # stamped with the sample ts

    def test_one_good_round_resets_the_streak(self):
        clock, history, engine, gauge = self._stack(
            [ThresholdRule("lag", "repro_lag", ">", 5, for_samples=2)]
        )
        for step, value in enumerate((9, 2, 9)):
            clock.now = float(step)
            gauge.set(value)
            history.sample()
            assert engine.evaluate() == []
        assert engine.firing() == []

    def test_resolves_and_logs_both_transitions(self):
        log = CapturingLogger(min_level="info")
        clock, history, engine, gauge = self._stack(
            [ThresholdRule("lag", "repro_lag", ">", 5)], log=log
        )
        gauge.set(9)
        history.sample()
        engine.evaluate()
        clock.now = 1.0
        gauge.set(1)
        history.sample()
        changed = engine.evaluate()
        assert [t["to"] for t in changed] == ["resolved"]
        events = [e["event"] for e in log.events()]
        assert events == ["alert.firing", "alert.resolved"]
        assert engine.status()["firing"] == []

    def test_no_data_never_breaches(self):
        _, history, engine, _ = self._stack(
            [ThresholdRule("lag", "repro_nope", ">", 5)]
        )
        history.sample()
        assert engine.evaluate() == []
        assert engine.status()["rules"][0]["state"] == "ok"

    def test_transition_metrics_and_gauge(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        history = MetricHistory(
            registry=MetricsRegistry(), capacity=8, clock=clock
        )
        gauge = history.registry.gauge("repro_lag", "lag")
        engine = AlertEngine(
            history, [ThresholdRule("lag", "repro_lag", ">", 5)],
            metrics=registry,
        )
        gauge.set(9)
        history.sample()
        engine.evaluate()
        firing_gauge = registry.get("repro_alerts_firing")
        assert firing_gauge.as_dict()["values"][0]["value"] == 1
        clock.now = 1.0
        gauge.set(0)
        history.sample()
        engine.evaluate()
        assert firing_gauge.as_dict()["values"][0]["value"] == 0
        transitions = registry.get("repro_alert_transitions_total").as_dict()
        by_to = {
            row["labels"]["to"]: row["value"]
            for row in transitions["values"]
        }
        assert by_to == {"firing": 1, "resolved": 1}

    def test_duplicate_rule_names_rejected(self):
        history = MetricHistory(registry=MetricsRegistry(), capacity=8)
        with pytest.raises(ValueError):
            AlertEngine(
                history,
                [ThresholdRule("x", "m", ">", 1), ThresholdRule("x", "m", ">", 2)],
                metrics=MetricsRegistry(),
            )

    def test_deterministic_replay(self):
        """The same injected-clock script produces identical transition
        lists on every run -- the property the E26 benchmark gates."""
        def run():
            clock, history, engine, gauge = self._stack(
                [parse_rule("rate(repro_lag, 30) > 5", name="burst")]
            )
            trace = []
            for step in range(12):
                clock.now = float(step)
                gauge.set(step * 10 if step < 5 else 50)
                history.sample()
                for t in engine.evaluate():
                    trace.append((t["rule"], t["to"], t["ts"]))
            return trace

        first, second = run(), run()
        assert first == second
        assert [(rule, to) for rule, to, _ in first] == [
            ("burst", "firing"), ("burst", "resolved"),
        ]
