"""The metrics registry: instruments, labels and exposition formats."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_counts_up(self):
        c = Counter("requests_total", "Requests")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_rejects_decrements(self):
        c = Counter("requests_total", "Requests")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        c = Counter("searches_total", "Searches", labelnames=("code",))
        c.inc(code="success")
        c.inc(2, code="noSuchObject")
        assert c.value(code="success") == 1
        assert c.value(code="noSuchObject") == 2
        assert c.value(code="never") == 0

    def test_wrong_labels_raise(self):
        c = Counter("searches_total", "Searches", labelnames=("code",))
        with pytest.raises(ValueError):
            c.inc(outcome="hit")
        with pytest.raises(ValueError):
            c.inc()


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("pool_pages", "Buffered pages")
        g.set(7)
        g.inc(-2)
        assert g.value() == 5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("latency", "Latency", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(5.555)

    def test_exposition_is_cumulative_with_inf(self):
        h = Histogram("latency", "Latency", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        h.observe(99)
        lines = h.expose()
        assert 'latency_bucket{le="0.01"} 1' in lines
        assert 'latency_bucket{le="0.1"} 2' in lines
        assert 'latency_bucket{le="+Inf"} 3' in lines
        assert "latency_count 3" in lines

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("empty", "no bounds", buckets=())


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "Hits")
        b = registry.counter("hits_total", "Hits")
        assert a is b
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "X")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "X", labelnames=("b",))

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("searches_total", "Searches served",
                         labelnames=("code",)).inc(code="success")
        registry.gauge("hit_rate", "Buffer hit rate").set(0.75)
        text = registry.to_prometheus()
        assert "# HELP searches_total Searches served" in text
        assert "# TYPE searches_total counter" in text
        assert 'searches_total{code="success"} 1' in text
        assert "hit_rate 0.75" in text
        assert text.endswith("\n")

    def test_json_exposition_parses_back(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits").inc(3)
        registry.histogram("io", "Page I/O", buckets=(1, 10)).observe(4)
        payload = json.loads(registry.to_json())
        assert payload["hits_total"]["kind"] == "counter"
        assert payload["hits_total"]["values"][0]["value"] == 3
        assert payload["io"]["buckets"] == [1.0, 10.0]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("q_total", "Q", labelnames=("text",)).inc(
            text='say "hi"\nthere'
        )
        text = registry.to_prometheus()
        assert '\\"hi\\"' in text and "\\n" in text

    def test_process_registry_swap(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestHistogramQuantiles:
    def test_interpolates_inside_the_bucket(self):
        h = Histogram("latency", "Latency", buckets=(10.0, 20.0, 40.0))
        for v in (5, 5, 15, 15, 15, 15, 25, 25, 25, 35):
            h.observe(v)
        # rank(p50) = 5 lands in the (10, 20] bucket, which holds the
        # 3rd..6th observations: 10 + 10 * (5 - 2) / 4 = 17.5.
        assert h.quantile(0.5) == pytest.approx(17.5)
        assert h.quantile(0.0) == 0.0

    def test_overflow_clamps_to_the_top_bound(self):
        h = Histogram("latency", "Latency", buckets=(1.0, 2.0))
        h.observe(50.0)
        h.observe(60.0)
        assert h.quantile(0.99) == 2.0

    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("latency", "Latency", buckets=(1.0,))
        assert h.quantile(0.5) is None
        assert h.quantiles() is None

    def test_quantiles_summary_is_ordered(self):
        h = Histogram("latency", "Latency", buckets=(0.01, 0.1, 1.0, 10.0))
        for v in (0.005, 0.02, 0.03, 0.2, 0.4, 2.0):
            h.observe(v)
        summary = h.quantiles()
        assert set(summary) == {"p50", "p95", "p99"}
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_out_of_range_quantile_rejected(self):
        h = Histogram("latency", "Latency", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_labelled_series_have_independent_quantiles(self):
        h = Histogram("io", "IO", buckets=(10.0, 100.0), labelnames=("op",))
        h.observe(5, op="point")
        h.observe(90, op="scan")
        assert h.quantile(0.5, op="point") < h.quantile(0.5, op="scan")

    def test_as_dict_carries_quantiles(self):
        registry = MetricsRegistry()
        h = registry.histogram("io", "IO", buckets=(10.0, 100.0))
        h.observe(5)
        payload = registry.as_dict()
        assert payload["io"]["values"][0]["quantiles"]["p50"] == pytest.approx(
            h.quantile(0.5)
        )
