"""Span tracing: nesting, exact I/O attribution, and the free disabled
path (ISSUE satellite: spans nest correctly and attribute I/O deltas to
the right operator on a known query tree; the disabled tracer allocates
no spans)."""

import pytest

from repro.engine.engine import QueryEngine
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.workload import random_instance

QUERY = "(& ( ? sub ? kind=alpha) ( ? sub ? weight<50))"


@pytest.fixture
def traced():
    instance = random_instance(7, size=300)
    tracer = Tracer()
    engine = QueryEngine.from_instance(instance, page_size=8, tracer=tracer)
    return instance, engine, tracer


class TestSpanTree:
    def test_spans_mirror_the_query_tree(self, traced):
        _instance, engine, tracer = traced
        engine.run(QUERY)
        root = tracer.last_root()
        assert root.name == "execute"
        (merge,) = root.children
        assert merge.name == "op:and"
        assert [child.name for child in merge.children] == [
            "op:atomic", "op:atomic",
        ]

    def test_row_counts_recorded_per_operator(self, traced):
        instance, engine, tracer = traced
        result = engine.run(QUERY)
        merge = tracer.last_root().find("op:and")
        assert merge.attrs["rows"] == len(result)
        expected = len(evaluate(parse_query(QUERY), instance))
        assert len(result) == expected

    def test_exclusive_io_sums_to_root_inclusive(self, traced):
        # The acceptance criterion: the per-operator (exclusive) page
        # transfers of the whole span tree sum to the root's inclusive
        # count -- no I/O is double-counted or lost.
        _instance, engine, tracer = traced
        engine.run(QUERY)
        root = tracer.last_root()
        exclusive_sum = sum(
            span.exclusive("io", "total") for span in root.walk()
        )
        assert exclusive_sum == root.stats["io"].total
        assert root.stats["io"].total > 0

    def test_root_io_matches_pager_delta(self, traced):
        _instance, engine, tracer = traced
        before = engine.pager.stats.snapshot()
        engine.run(QUERY)
        delta = engine.pager.stats.since(before)
        root = tracer.last_root()
        assert root.stats["io"].total == delta.total
        assert root.stats["io"].logical_total == delta.logical_total

    def test_leaves_carry_the_scan_cost(self, traced):
        # Atomic leaves do the scanning; the merge's own share is the
        # boolean merge, strictly less than the whole run.
        _instance, engine, tracer = traced
        engine.run(QUERY)
        root = tracer.last_root()
        merge = root.find("op:and")
        leaf_io = sum(
            child.stats["io"].total for child in merge.children
        )
        assert leaf_io > 0
        assert merge.exclusive("io", "total") == (
            merge.stats["io"].total - leaf_io
        )

    def test_tracing_does_not_change_results(self, traced):
        instance, engine, _tracer = traced
        plain = QueryEngine.from_instance(instance, page_size=8)
        assert engine.run(QUERY).dns() == plain.run(QUERY).dns()


class TestSpanIdentity:
    def test_trace_and_parent_ids_wire_up(self, traced):
        _instance, engine, tracer = traced
        engine.run(QUERY)
        root = tracer.last_root()
        for span in root.walk():
            assert span.trace_id == root.trace_id
        merge = root.children[0]
        assert merge.parent_id == root.span_id
        assert all(c.parent_id == merge.span_id for c in merge.children)

    def test_context_grafts_remote_span(self):
        caller, remote = Tracer(), Tracer()
        with caller.span("search") as parent:
            context = caller.context()
        with remote.span("serve", context=context):
            pass
        served = remote.last_root()
        assert served.trace_id == parent.trace_id
        assert served.parent_id == parent.span_id

    def test_exception_is_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        root = tracer.last_root()
        assert "RuntimeError" in root.attrs["error"]

    def test_root_ring_is_bounded(self):
        tracer = Tracer(keep_roots=2)
        for i in range(5):
            with tracer.span("s%d" % i):
                pass
        assert [s.name for s in tracer.root_spans] == ["s3", "s4"]

    def test_render_and_as_dict(self, traced):
        _instance, engine, tracer = traced
        engine.run(QUERY)
        root = tracer.last_root()
        text = root.render()
        assert "op:and" in text and "io=" in text
        payload = root.as_dict()
        assert payload["name"] == "execute"
        assert payload["stats"]["io"]["logical_reads"] >= 0
        assert len(payload["children"]) == 1


class TestDisabledPath:
    def test_null_tracer_span_is_identity(self):
        cm = NULL_TRACER.span("anything", rows=1)
        assert cm is NULL_TRACER
        with cm as span:
            assert span is NULL_TRACER
            assert span.set(rows=2) is NULL_TRACER
        assert NULL_TRACER.context() is None
        assert NULL_TRACER.last_root() is None
        assert NULL_TRACER.root_spans == ()
        assert not NULL_TRACER.enabled

    def test_engine_defaults_to_null_tracer(self):
        engine = QueryEngine.from_instance(random_instance(7, size=60), page_size=8)
        assert engine.tracer is NULL_TRACER

    def test_disabled_run_allocates_no_spans(self, monkeypatch):
        allocations = []
        original = Span.__init__

        def counting(self, *args, **kwargs):
            allocations.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(Span, "__init__", counting)
        engine = QueryEngine.from_instance(random_instance(7, size=120), page_size=8)
        engine.run(QUERY)
        assert allocations == []

    def test_null_tracer_is_reused_across_engines(self):
        a = QueryEngine.from_instance(random_instance(1, size=30), page_size=8)
        b = QueryEngine.from_instance(random_instance(2, size=30), page_size=8)
        assert a.tracer is b.tracer is NULL_TRACER
        assert isinstance(a.tracer, NullTracer)
