"""The query digest table: per-fingerprint aggregation, vias, the
fewest-calls eviction bound, orderings, and the snapshot shape."""

import pytest

from repro.obs.digest import QueryDigestTable


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class TestAggregation:
    def test_one_row_per_fingerprint_with_running_aggregates(self):
        clock = FakeClock()
        table = QueryDigestTable(clock=clock)
        table.observe("k1", "(q1)", 0.010, pages=4, entries=3, via="engine",
                      qerror=2.0)
        clock.now += 5
        table.observe("k1", "(q1 rewritten)", 0.030, pages=8, entries=5,
                      via="engine", qerror=4.0)
        row = table.get("k1")
        assert row.calls == 2
        assert row.text == "(q1)"  # first spelling wins
        assert row.elapsed_total == pytest.approx(0.040)
        assert row.elapsed_max == pytest.approx(0.030)
        assert row.pages_total == 12
        assert row.entries_total == 8 and row.entries_max == 5
        assert row.qerror_max == 4.0
        assert row.mean_qerror == pytest.approx(3.0)
        assert row.first_seen == 100.0 and row.last_seen == 105.0

    def test_vias_split_into_hit_counters(self):
        table = QueryDigestTable()
        for via in ("engine", "cache", "cache", "superset", "federation"):
            table.observe("k", "(q)", 0.001, via=via)
        row = table.get("k")
        assert row.cache_hits == 2
        assert row.superset_hits == 1
        assert row.federated == 1
        assert row.hits == 3  # exact + superset
        assert row.as_dict()["hit_rate"] == pytest.approx(0.6)

    def test_unknown_via_is_rejected(self):
        with pytest.raises(ValueError, match="via"):
            QueryDigestTable().observe("k", "(q)", 0.001, via="disk")

    def test_qerror_none_does_not_count(self):
        table = QueryDigestTable()
        table.observe("k", "(q)", 0.001, qerror=None)
        row = table.get("k")
        assert row.qerror_count == 0
        assert row.mean_qerror is None
        assert row.as_dict()["qerror_mean"] is None


class TestBound:
    def test_fewest_calls_row_is_evicted_at_capacity(self):
        clock = FakeClock()
        table = QueryDigestTable(capacity=2, clock=clock)
        for _ in range(3):
            table.observe("hot", "(hot)", 0.001)
        table.observe("warm", "(warm)", 0.001)
        table.observe("warm", "(warm)", 0.001)
        table.observe("new", "(new)", 0.001)  # warm (2 calls) < hot (3)
        assert table.evicted == 1
        assert table.get("hot") is not None
        assert table.get("new") is not None
        assert table.get("warm") is None

    def test_ties_evict_least_recently_seen(self):
        clock = FakeClock()
        table = QueryDigestTable(capacity=2, clock=clock)
        table.observe("old", "(old)", 0.001)
        clock.now += 1
        table.observe("young", "(young)", 0.001)
        clock.now += 1
        table.observe("new", "(new)", 0.001)
        assert table.get("old") is None
        assert table.get("young") is not None

    def test_observed_counts_survive_eviction(self):
        table = QueryDigestTable(capacity=1)
        table.observe("a", "(a)", 0.001)
        table.observe("b", "(b)", 0.001)
        assert table.observed == 2 and table.evicted == 1 and len(table) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryDigestTable(capacity=0)


class TestRanking:
    def _table(self):
        table = QueryDigestTable()
        for _ in range(5):
            table.observe("many", "(many)", 0.001, pages=1, qerror=1.0)
        table.observe("slow", "(slow)", 0.900, pages=50, qerror=8.0)
        return table

    def test_top_by_calls_and_by_time_disagree(self):
        table = self._table()
        assert table.top(1, by="calls")[0].key == "many"
        assert table.top(1, by="time")[0].key == "slow"
        assert table.top(1, by="pages")[0].key == "slow"
        assert table.top(1, by="qerror")[0].key == "slow"

    def test_unknown_ordering_is_rejected(self):
        with pytest.raises(ValueError, match="by"):
            self._table().top(1, by="vibes")

    def test_snapshot_is_json_ready(self):
        import json

        table = self._table()
        snap = table.snapshot(n=1, by="time")
        json.dumps(snap)  # must not raise
        assert snap["rows"] == 2 and snap["observed"] == 6
        assert snap["by"] == "time"
        assert [r["key"] for r in snap["top"]] == ["slow"]

    def test_reset_clears_rows_and_counters(self):
        table = self._table()
        table.reset()
        assert len(table) == 0 and table.observed == 0
