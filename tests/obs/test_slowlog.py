"""The slow-query log: threshold, ring capacity, disabled default."""

from repro.obs.slowlog import SlowQueryLog

import pytest


class TestSlowQueryLog:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert log.record("( ? sub ? a=*)", elapsed=99.0) is None
        assert len(log) == 0

    def test_threshold_gates_recording(self):
        log = SlowQueryLog(threshold_seconds=0.010)
        assert log.record("fast", elapsed=0.002) is None
        record = log.record("slow", elapsed=0.020, io_total=7,
                            cached=False, result_size=3)
        assert record is not None
        assert [r.query_text for r in log] == ["slow"]
        assert record.io_total == 7
        assert record.result_size == 3

    def test_ring_keeps_newest(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=2)
        for i in range(5):
            log.record("q%d" % i, elapsed=1.0)
        assert [r.query_text for r in log.records()] == ["q3", "q4"]
        assert log.total == 5

    def test_as_dicts_round_trips(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.record("( ? sub ? a=*)", elapsed=0.5, io_total=9, cached=True,
                   result_size=2)
        (d,) = log.as_dicts()
        assert d == {
            "query": "( ? sub ? a=*)",
            "elapsed_s": 0.5,
            "io_total": 9,
            "cached": True,
            "result_size": 2,
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=0.0, capacity=0)


class TestTraceCorrelation:
    def test_trace_id_joins_the_record_to_its_trace(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.record("(q)", elapsed=0.2, io_total=3, trace_id="t42")
        record = log.records()[0]
        assert record.trace_id == "t42"
        assert record.as_dict()["trace_id"] == "t42"

    def test_trace_id_omitted_when_tracing_is_off(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.record("(q)", elapsed=0.2, io_total=3)
        assert log.records()[0].trace_id is None
        assert "trace_id" not in log.as_dicts()[0]
