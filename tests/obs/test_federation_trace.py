"""Distributed tracing: span ids propagate across the simulated network
and federation metrics count shipped work per server."""

import pytest

from repro.dist import FederatedDirectory
from repro.dist.network import SimulatedNetwork
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.workload import random_instance


@pytest.fixture
def traced_federation():
    instance = random_instance(31, size=120, forest_roots=3)
    roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
    assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
    tracer = Tracer()
    registry = MetricsRegistry()
    fed = FederatedDirectory.partition(
        instance, assignments, page_size=8,
        network=SimulatedNetwork(keep_log=True),
        leaf_cache_bytes=0,  # always ship, so every query traces remotely
        tracer=tracer, metrics=registry,
    )
    return fed, tracer, registry


def remote_query(fed):
    """A coordinator plus an atomic query owned by a different server."""
    context = fed.servers["server1"].contexts[0]
    return "server0", "(%s ? sub ? kind=alpha)" % context


class TestTracePropagation:
    def test_remote_span_joins_the_coordinator_trace(self, traced_federation):
        fed, tracer, _registry = traced_federation
        at, text = remote_query(fed)
        fed.query(at, text)
        root = tracer.last_root()
        assert root.name == "fed-query"
        remote = root.find("remote-atomic")
        assert remote is not None
        assert remote.attrs["server"] == "server1"
        # The remote server records its serving span in its *own* tracer,
        # but grafted into the coordinator's trace via the carried context.
        served = fed.servers["server1"].tracer.last_root()
        assert served.name == "serve-atomic"
        assert served.trace_id == root.trace_id
        assert served.parent_id == remote.span_id
        assert served.attrs["server"] == "server1"

    def test_network_log_carries_the_trace_id(self, traced_federation):
        fed, tracer, _registry = traced_federation
        at, text = remote_query(fed)
        fed.query(at, text)
        root = tracer.last_root()
        assert len(fed.network.trace_ids) == len(fed.network.log) == 2
        assert set(fed.network.trace_ids) == {root.trace_id}

    def test_local_leaves_join_too(self, traced_federation):
        fed, tracer, _registry = traced_federation
        local_context = fed.servers["server0"].contexts[0]
        fed.query("server0", "(%s ? sub ? kind=alpha)" % local_context)
        root = tracer.last_root()
        served = fed.servers["server0"].tracer.last_root()
        assert served.trace_id == root.trace_id

    def test_members_get_their_own_tracers(self, traced_federation):
        fed, tracer, _registry = traced_federation
        tracers = {name: server.tracer for name, server in fed.servers.items()}
        assert all(t.enabled for t in tracers.values())
        assert all(t is not tracer for t in tracers.values())

    def test_untraced_federation_stays_untraced(self):
        instance = random_instance(31, size=60, forest_roots=2)
        roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
        assignments = {"s%d" % i: [root] for i, root in enumerate(roots)}
        fed = FederatedDirectory.partition(
            instance, assignments, page_size=8, metrics=MetricsRegistry()
        )
        assert not fed.tracer.enabled
        assert all(not s.tracer.enabled for s in fed.servers.values())


class TestFederationMetrics:
    def test_shipping_is_counted_per_server(self, traced_federation):
        fed, _tracer, registry = traced_federation
        at, text = remote_query(fed)
        result = fed.query(at, text)
        requests = registry.get("repro_fed_remote_requests_total")
        sublists = registry.get("repro_fed_shipped_sublists_total")
        entries = registry.get("repro_fed_shipped_entries_total")
        assert requests.value(server="server1") == 1
        assert sublists.value(server="server1") == 1
        assert entries.value(server="server1") == result.entries_shipped
        assert requests.value(server="server2") == 0

    def test_leaf_cache_outcomes_counted(self):
        instance = random_instance(31, size=120, forest_roots=3)
        roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
        assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
        registry = MetricsRegistry()
        fed = FederatedDirectory.partition(
            instance, assignments, page_size=8, metrics=registry
        )
        at = "server0"
        text = "(%s ? sub ? kind=alpha)" % fed.servers["server1"].contexts[0]
        fed.query(at, text)
        fed.query(at, text)
        lookups = registry.get("repro_fed_leaf_cache_lookups_total")
        assert lookups.value(outcome="miss") == 1
        assert lookups.value(outcome="hit") == 1
