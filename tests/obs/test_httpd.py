"""The HTTP admin endpoint: every route, the byte-identical /metrics
guarantee, and lifecycle behaviour on an ephemeral port."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import AdminServer
from repro.obs.log import CapturingLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer, TraceSampler


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read()


@pytest.fixture
def stack():
    registry = MetricsRegistry()
    registry.counter("repro_searches_total", "Searches", labelnames=("code",)).inc(
        3, code="success"
    )
    latency = registry.histogram(
        "repro_search_seconds", "Latency", buckets=(0.001, 0.01, 0.1, 1.0)
    )
    for value in (0.002, 0.003, 0.004, 0.02):
        latency.observe(value)
    slowlog = SlowQueryLog(threshold_seconds=0.0)
    slowlog.record("(slow)", elapsed=0.02, io_total=40, trace_id="t1")
    tracer = Tracer()
    with tracer.span("search") as span:
        span.set(code="success")
    sampler = TraceSampler(capacity=8)
    sampler.offer(tracer.last_root(), elapsed=0.02, query_text="(slow)",
                  trace_id="t1", reasons=("slow",))
    server = AdminServer(
        registry=registry,
        slow_queries=slowlog,
        sampler=sampler,
        health=lambda: {"entries": 20},
    ).start()
    yield server, registry
    server.stop()


class TestEndpoints:
    def test_metrics_is_byte_identical_to_the_registry_export(self, stack):
        server, registry = stack
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert body == registry.to_prometheus().encode("utf-8")
        assert b'repro_searches_total{code="success"} 3' in body

    def test_healthz_reports_status_uptime_and_owner_fields(self, stack):
        server, _ = stack
        status, headers, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0
        assert payload["entries"] == 20

    def test_slowlog_serves_the_ring_with_latency_quantiles(self, stack):
        server, _ = stack
        _, _, body = _get(server.url + "/slowlog")
        payload = json.loads(body)
        assert payload["threshold_s"] == 0.0
        assert payload["total"] == 1
        record = payload["records"][0]
        assert record["query"] == "(slow)" and record["trace_id"] == "t1"
        quantiles = payload["latency_quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]

    def test_traces_serves_the_sampler_tail(self, stack):
        server, _ = stack
        _, _, body = _get(server.url + "/traces")
        payload = json.loads(body)
        assert payload["offered"] == 1 and payload["kept"] == 1
        sample = payload["traces"][0]
        assert sample["trace_id"] == "t1"
        assert sample["reasons"] == ["slow"]
        assert sample["spans"]["name"] == "search"

    def test_trailing_slash_and_query_string_are_normalised(self, stack):
        server, registry = stack
        _, _, plain = _get(server.url + "/metrics")
        _, _, slashed = _get(server.url + "/metrics/")
        _, _, queried = _get(server.url + "/metrics?scrape=1")
        assert plain == slashed == queried

    def test_unknown_path_is_a_json_404(self, stack):
        server, _ = stack
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404
        assert json.loads(err.value.read())["path"] == "/nope"

    def test_scrapes_are_logged_at_debug(self):
        log = CapturingLogger(min_level="debug")
        with AdminServer(registry=MetricsRegistry(), log=log) as server:
            _get(server.url + "/healthz")
        events = [e["event"] for e in log.events()]
        assert events[0] == "admin.start"
        assert "admin.request" in events
        assert events[-1] == "admin.stop"


class TestWorkloadEndpoints:
    @pytest.fixture
    def workload_server(self):
        from repro.model.dn import DN
        from repro.obs.alerts import AlertEngine, ThresholdRule
        from repro.obs.digest import QueryDigestTable
        from repro.obs.heatmap import SubtreeHeatMap
        from repro.obs.history import MetricHistory

        registry = MetricsRegistry()
        registry.gauge("repro_lag", "lag").set(9)
        digest = QueryDigestTable(capacity=8, clock=lambda: 100.0)
        digest.observe("k1", "(q1)", 0.010, pages=4, via="engine", qerror=2.0)
        digest.observe("k1", "(q1)", 0.001, via="cache")
        digest.observe("k2", "(q2)", 0.500, pages=50, via="engine")
        heatmap = SubtreeHeatMap(depth=2, clock=lambda: 100.0)
        heatmap.record_read(DN.parse("dc=att, dc=com"), pages=7)
        history = MetricHistory(registry=registry, capacity=8,
                                clock=lambda: 100.0)
        history.sample()
        alerts = AlertEngine(
            history, [ThresholdRule("lag", "repro_lag", ">", 5)],
            metrics=MetricsRegistry(),
        )
        alerts.evaluate()
        server = AdminServer(
            registry=registry, digest=digest, heatmap=heatmap,
            history=history, alerts=alerts,
        ).start()
        yield server
        server.stop()

    def test_digest_route_serves_the_table(self, workload_server):
        status, headers, body = _get(workload_server.url + "/digest?n=1&by=time")
        payload = json.loads(body)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert payload["enabled"] is True
        assert payload["rows"] == 2 and payload["by"] == "time"
        assert [r["key"] for r in payload["top"]] == ["k2"]

    def test_heatmap_route_serves_the_cells(self, workload_server):
        _, _, body = _get(workload_server.url + "/heatmap?n=5")
        payload = json.loads(body)
        assert payload["enabled"] is True and payload["depth"] == 2
        assert payload["hottest"][0]["subtree"] == "dc=att, dc=com"

    def test_history_route_serves_samples(self, workload_server):
        _, _, body = _get(
            workload_server.url + "/history?limit=1&metric=repro_lag"
        )
        payload = json.loads(body)
        assert payload["enabled"] is True and payload["taken"] == 1
        sample = payload["samples"][0]
        assert sample["metrics"]["repro_lag"]["series"][0]["value"] == 9

    def test_alerts_route_serves_engine_status(self, workload_server):
        _, _, body = _get(workload_server.url + "/alerts")
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["firing"] == ["lag"]
        assert payload["transitions"][0]["to"] == "firing"

    def test_absent_collaborators_serve_disabled_stubs(self):
        with AdminServer(registry=MetricsRegistry()) as server:
            for route in ("/digest", "/heatmap", "/history", "/alerts"):
                status, _, body = _get(server.url + route)
                assert status == 200
                assert json.loads(body)["enabled"] is False


class TestHardening:
    def test_bad_query_parameters_are_json_400s(self, stack):
        server, _ = stack
        for url in ("/digest?n=abc", "/digest?n=-1", "/digest?by=vibes",
                    "/heatmap?by=vibes", "/history?limit=x"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + url)
            assert err.value.code == 400
            payload = json.loads(err.value.read())
            assert payload["error"]
            assert err.value.headers["Content-Type"] == "application/json"

    def test_404_lists_the_routes(self, stack):
        server, _ = stack
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        payload = json.loads(err.value.read())
        assert "/digest" in payload["endpoints"]
        assert "/metrics" in payload["endpoints"]

    def test_writes_are_405_with_allow_header(self, stack):
        server, _ = stack
        request = urllib.request.Request(
            server.url + "/metrics", data=b"x=1", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 405
        assert err.value.headers["Allow"] == "GET, HEAD"
        assert json.loads(err.value.read())["error"]

    def test_head_sends_headers_without_a_body(self, stack):
        server, _ = stack
        request = urllib.request.Request(
            server.url + "/healthz", method="HEAD"
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.status == 200
            assert int(response.headers["Content-Length"]) > 0
            assert response.read() == b""

    def test_every_route_declares_a_content_type(self, stack):
        server, _ = stack
        for route in AdminServer(registry=MetricsRegistry()).routes():
            _, headers, _ = _get(server.url + route)
            expected = ("text/plain" if route == "/metrics"
                        else "application/json")
            assert headers["Content-Type"].startswith(expected), route


class TestLifecycle:
    def test_port_zero_binds_ephemerally(self):
        server = AdminServer(registry=MetricsRegistry())
        assert server.url is None and not server.running
        server.start()
        try:
            host, port = server.address
            assert host == "127.0.0.1" and port > 0
            assert server.url == "http://127.0.0.1:%d" % port
        finally:
            server.stop()

    def test_stop_is_idempotent_and_restart_rejected_while_running(self):
        server = AdminServer(registry=MetricsRegistry()).start()
        with pytest.raises(RuntimeError):
            server.start()
        server.stop()
        server.stop()  # no-op
        assert not server.running

    def test_empty_collaborators_serve_empty_payloads(self):
        with AdminServer(registry=MetricsRegistry()) as server:
            _, _, slow = _get(server.url + "/slowlog")
            _, _, traces = _get(server.url + "/traces")
        assert json.loads(slow)["records"] == []
        assert json.loads(traces) == {"offered": 0, "kept": 0, "traces": []}


class TestServiceIntegration:
    def test_serve_admin_exposes_the_service_registry(self):
        from tests.obs.test_budget import QUERY, make_instance
        from repro.obs.budget import QueryBudget
        from repro.server import DirectoryService

        registry = MetricsRegistry()
        service = DirectoryService(
            make_instance(), page_size=4, metrics=registry,
            tracer=Tracer(), slow_query_seconds=0.0,
            trace_sampler=TraceSampler(capacity=8),
        )
        service.bind_anonymous()
        service.search(QUERY)
        # A different query: the first one is now cached, and cache hits
        # are never budget-charged.
        service.search("(dc=com ? sub ? grade=4)", budget=QueryBudget(max_pages=0))
        server = service.serve_admin()
        try:
            _, _, body = _get(server.url + "/metrics")
            # The acceptance bar: the scrape is byte-identical to what
            # ``python -m repro metrics`` prints for the same registry.
            assert body == registry.to_prometheus().encode("utf-8")
            assert b"repro_budget_exceeded_total" in body
            payload = json.loads(_get(server.url + "/healthz")[2])
            assert payload["entries"] == 13
            slow = json.loads(_get(server.url + "/slowlog")[2])
            assert slow["total"] == 2
            traces = json.loads(_get(server.url + "/traces")[2])
            kept_reasons = {r for t in traces["traces"] for r in t["reasons"]}
            assert "budget" in kept_reasons
        finally:
            server.stop()


class TestReplicationHealth:
    def _service(self):
        from tests.obs.test_budget import make_instance
        from repro.server import DirectoryService

        registry = MetricsRegistry()
        return DirectoryService(make_instance(), page_size=4, metrics=registry)

    def _replicated(self):
        from repro.dist import ReplicatedContext, SimulatedNetwork
        from repro.workload import synthetic_schema

        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=2,
            network=SimulatedNetwork(), metrics=MetricsRegistry(),
        )
        replicated.add("name=r", ["node"], name="r")
        for index in range(4):
            replicated.add("name=e%d, name=r" % index, ["node"],
                           name="e%d" % index)
        return replicated

    def test_healthz_reports_replication_status(self):
        service = self._service()
        replicated = self._replicated()
        replicated.sync()
        service.attach_replication(replicated, lag_alert=3)
        server = service.serve_admin()
        try:
            payload = json.loads(_get(server.url + "/healthz")[2])
            assert payload["status"] == "ok"
            replication = payload["replication"]
            assert replication["epoch"] == 1
            assert replication["primary"] == "primary"
            assert replication["lag_alert"] == 3
            assert replication["replicas"]["secondary0"]["lag"] == 0
        finally:
            server.stop()

    def test_healthz_degrades_on_replication_lag(self):
        service = self._service()
        replicated = self._replicated()  # never synced: lag 5 > alert 3
        service.attach_replication(replicated, lag_alert=3)
        server = service.serve_admin()
        try:
            payload = json.loads(_get(server.url + "/healthz")[2])
            assert payload["status"] == "degraded"
            assert payload["replication"]["replicas"]["secondary1"]["lag"] == 5
        finally:
            server.stop()

    def test_lag_alert_must_be_non_negative(self):
        service = self._service()
        with pytest.raises(ValueError):
            service.attach_replication(self._replicated(), lag_alert=-1)
