"""The HTTP admin endpoint: every route, the byte-identical /metrics
guarantee, and lifecycle behaviour on an ephemeral port."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import AdminServer
from repro.obs.log import CapturingLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer, TraceSampler


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read()


@pytest.fixture
def stack():
    registry = MetricsRegistry()
    registry.counter("repro_searches_total", "Searches", labelnames=("code",)).inc(
        3, code="success"
    )
    latency = registry.histogram(
        "repro_search_seconds", "Latency", buckets=(0.001, 0.01, 0.1, 1.0)
    )
    for value in (0.002, 0.003, 0.004, 0.02):
        latency.observe(value)
    slowlog = SlowQueryLog(threshold_seconds=0.0)
    slowlog.record("(slow)", elapsed=0.02, io_total=40, trace_id="t1")
    tracer = Tracer()
    with tracer.span("search") as span:
        span.set(code="success")
    sampler = TraceSampler(capacity=8)
    sampler.offer(tracer.last_root(), elapsed=0.02, query_text="(slow)",
                  trace_id="t1", reasons=("slow",))
    server = AdminServer(
        registry=registry,
        slow_queries=slowlog,
        sampler=sampler,
        health=lambda: {"entries": 20},
    ).start()
    yield server, registry
    server.stop()


class TestEndpoints:
    def test_metrics_is_byte_identical_to_the_registry_export(self, stack):
        server, registry = stack
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert body == registry.to_prometheus().encode("utf-8")
        assert b'repro_searches_total{code="success"} 3' in body

    def test_healthz_reports_status_uptime_and_owner_fields(self, stack):
        server, _ = stack
        status, headers, body = _get(server.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0
        assert payload["entries"] == 20

    def test_slowlog_serves_the_ring_with_latency_quantiles(self, stack):
        server, _ = stack
        _, _, body = _get(server.url + "/slowlog")
        payload = json.loads(body)
        assert payload["threshold_s"] == 0.0
        assert payload["total"] == 1
        record = payload["records"][0]
        assert record["query"] == "(slow)" and record["trace_id"] == "t1"
        quantiles = payload["latency_quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]

    def test_traces_serves_the_sampler_tail(self, stack):
        server, _ = stack
        _, _, body = _get(server.url + "/traces")
        payload = json.loads(body)
        assert payload["offered"] == 1 and payload["kept"] == 1
        sample = payload["traces"][0]
        assert sample["trace_id"] == "t1"
        assert sample["reasons"] == ["slow"]
        assert sample["spans"]["name"] == "search"

    def test_trailing_slash_and_query_string_are_normalised(self, stack):
        server, registry = stack
        _, _, plain = _get(server.url + "/metrics")
        _, _, slashed = _get(server.url + "/metrics/")
        _, _, queried = _get(server.url + "/metrics?scrape=1")
        assert plain == slashed == queried

    def test_unknown_path_is_a_json_404(self, stack):
        server, _ = stack
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404
        assert json.loads(err.value.read())["path"] == "/nope"

    def test_scrapes_are_logged_at_debug(self):
        log = CapturingLogger(min_level="debug")
        with AdminServer(registry=MetricsRegistry(), log=log) as server:
            _get(server.url + "/healthz")
        events = [e["event"] for e in log.events()]
        assert events[0] == "admin.start"
        assert "admin.request" in events
        assert events[-1] == "admin.stop"


class TestLifecycle:
    def test_port_zero_binds_ephemerally(self):
        server = AdminServer(registry=MetricsRegistry())
        assert server.url is None and not server.running
        server.start()
        try:
            host, port = server.address
            assert host == "127.0.0.1" and port > 0
            assert server.url == "http://127.0.0.1:%d" % port
        finally:
            server.stop()

    def test_stop_is_idempotent_and_restart_rejected_while_running(self):
        server = AdminServer(registry=MetricsRegistry()).start()
        with pytest.raises(RuntimeError):
            server.start()
        server.stop()
        server.stop()  # no-op
        assert not server.running

    def test_empty_collaborators_serve_empty_payloads(self):
        with AdminServer(registry=MetricsRegistry()) as server:
            _, _, slow = _get(server.url + "/slowlog")
            _, _, traces = _get(server.url + "/traces")
        assert json.loads(slow)["records"] == []
        assert json.loads(traces) == {"offered": 0, "kept": 0, "traces": []}


class TestServiceIntegration:
    def test_serve_admin_exposes_the_service_registry(self):
        from tests.obs.test_budget import QUERY, make_instance
        from repro.obs.budget import QueryBudget
        from repro.server import DirectoryService

        registry = MetricsRegistry()
        service = DirectoryService(
            make_instance(), page_size=4, metrics=registry,
            tracer=Tracer(), slow_query_seconds=0.0,
            trace_sampler=TraceSampler(capacity=8),
        )
        service.bind_anonymous()
        service.search(QUERY)
        # A different query: the first one is now cached, and cache hits
        # are never budget-charged.
        service.search("(dc=com ? sub ? grade=4)", budget=QueryBudget(max_pages=0))
        server = service.serve_admin()
        try:
            _, _, body = _get(server.url + "/metrics")
            # The acceptance bar: the scrape is byte-identical to what
            # ``python -m repro metrics`` prints for the same registry.
            assert body == registry.to_prometheus().encode("utf-8")
            assert b"repro_budget_exceeded_total" in body
            payload = json.loads(_get(server.url + "/healthz")[2])
            assert payload["entries"] == 13
            slow = json.loads(_get(server.url + "/slowlog")[2])
            assert slow["total"] == 2
            traces = json.loads(_get(server.url + "/traces")[2])
            kept_reasons = {r for t in traces["traces"] for r in t["reasons"]}
            assert "budget" in kept_reasons
        finally:
            server.stop()


class TestReplicationHealth:
    def _service(self):
        from tests.obs.test_budget import make_instance
        from repro.server import DirectoryService

        registry = MetricsRegistry()
        return DirectoryService(make_instance(), page_size=4, metrics=registry)

    def _replicated(self):
        from repro.dist import ReplicatedContext, SimulatedNetwork
        from repro.workload import synthetic_schema

        replicated = ReplicatedContext(
            "name=r", synthetic_schema(), secondaries=2,
            network=SimulatedNetwork(), metrics=MetricsRegistry(),
        )
        replicated.add("name=r", ["node"], name="r")
        for index in range(4):
            replicated.add("name=e%d, name=r" % index, ["node"],
                           name="e%d" % index)
        return replicated

    def test_healthz_reports_replication_status(self):
        service = self._service()
        replicated = self._replicated()
        replicated.sync()
        service.attach_replication(replicated, lag_alert=3)
        server = service.serve_admin()
        try:
            payload = json.loads(_get(server.url + "/healthz")[2])
            assert payload["status"] == "ok"
            replication = payload["replication"]
            assert replication["epoch"] == 1
            assert replication["primary"] == "primary"
            assert replication["lag_alert"] == 3
            assert replication["replicas"]["secondary0"]["lag"] == 0
        finally:
            server.stop()

    def test_healthz_degrades_on_replication_lag(self):
        service = self._service()
        replicated = self._replicated()  # never synced: lag 5 > alert 3
        service.attach_replication(replicated, lag_alert=3)
        server = service.serve_admin()
        try:
            payload = json.loads(_get(server.url + "/healthz")[2])
            assert payload["status"] == "degraded"
            assert payload["replication"]["replicas"]["secondary1"]["lag"] == 5
        finally:
            server.stop()

    def test_lag_alert_must_be_non_negative(self):
        service = self._service()
        with pytest.raises(ValueError):
            service.attach_replication(self._replicated(), lag_alert=-1)
