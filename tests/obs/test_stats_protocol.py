"""The shared snapshot/delta protocol of counter blocks."""

import pytest

from repro.cache.stats import CacheStats
from repro.obs.stats import StatCounters
from repro.storage.pager import IOStats, Pager


def busy_pager() -> Pager:
    """A pager with some reads, writes and evictions on record."""
    pager = Pager(page_size=4, buffer_pages=2)
    ids = [pager.append_page(["r%d" % i]) for i in range(6)]
    for page_id in ids:
        pager.read(page_id)
    pager.flush()
    return pager


class TestIOStats:
    def test_field_names_cover_all_counters(self):
        assert IOStats.field_names() == (
            "reads", "writes", "logical_reads", "logical_writes", "allocated",
        )

    def test_as_dict_mirrors_counters(self):
        stats = busy_pager().stats
        d = stats.as_dict()
        assert d["reads"] == stats.reads
        assert d["logical_writes"] == stats.logical_writes
        assert set(d) == set(IOStats.field_names())

    def test_snapshot_is_decoupled_copy(self):
        pager = busy_pager()
        snap = pager.stats.snapshot()
        before = snap.as_dict()
        pager.read(0)
        assert snap.as_dict() == before
        assert pager.stats.logical_reads == snap.logical_reads + 1

    def test_since_brackets_a_phase(self):
        pager = busy_pager()
        before = pager.stats.snapshot()
        pager.read(0)
        pager.read(1)
        delta = pager.stats.since(before)
        assert delta.logical_reads == 2
        assert delta.allocated == 0

    def test_delta_is_alias_of_since(self):
        pager = busy_pager()
        before = pager.stats.snapshot()
        pager.read(0)
        assert pager.stats.delta(before).as_dict() == (
            pager.stats.since(before).as_dict()
        )

    def test_since_rejects_foreign_type(self):
        with pytest.raises(TypeError):
            IOStats().since(CacheStats())

    def test_totals_and_hit_rate(self):
        stats = IOStats(reads=2, writes=3, logical_reads=10, logical_writes=4)
        assert stats.total == 5
        assert stats.logical_total == 14
        assert stats.buffer_hit_rate == pytest.approx(0.8)

    def test_hit_rate_defined_when_idle(self):
        assert IOStats().buffer_hit_rate == 0.0


class TestCacheStats:
    def test_shares_the_protocol(self):
        assert issubclass(CacheStats, StatCounters)
        stats = CacheStats()
        stats.hits += 3
        stats.misses += 1
        snap = stats.snapshot()
        stats.hits += 2
        delta = stats.since(snap)
        assert delta.hits == 2
        assert delta.misses == 0
        assert stats.as_dict()["hits"] == 5
