"""Per-query resource budgets: tracker semantics, leak-free engine
cancellation, and the service/federation surfacing of adminLimitExceeded."""

import pytest

from repro.dist import FederatedDirectory
from repro.engine import QueryEngine
from repro.model.instance import DirectoryInstance
from repro.model.schema import DirectorySchema
from repro.obs.budget import BudgetExceeded, BudgetTracker, QueryBudget
from repro.obs.metrics import MetricsRegistry
from repro.server import DirectoryService, ResultCode
from repro.storage.pager import Pager
from repro.workload import random_instance

QUERY = "(dc=com ? sub ? grade=5)"
MERGE_QUERY = "(a (dc=com ? sub ? grade=4) (dc=com ? sub ? grade=5))"


def make_instance() -> DirectoryInstance:
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("uid", "string")
    schema.add_attribute("grade", "int")
    schema.add_class("dcObject", {"dc"})
    schema.add_class("account", {"uid", "grade"})
    instance = DirectoryInstance(schema)
    instance.add("dc=com", ["dcObject"], dc="com")
    for i in range(12):
        instance.add(
            "uid=u%d, dc=com" % i, ["account"], uid="u%d" % i, grade=i % 3 + 4
        )
    return instance


class TestQueryBudget:
    def test_needs_at_least_one_ceiling(self):
        with pytest.raises(ValueError):
            QueryBudget()

    def test_rejects_negative_ceilings(self):
        with pytest.raises(ValueError):
            QueryBudget(max_pages=-1)
        with pytest.raises(ValueError):
            QueryBudget(max_wall_s=-0.5)

    def test_as_dict_holds_only_set_ceilings(self):
        budget = QueryBudget(max_pages=100, max_entries=50)
        assert budget.as_dict() == {"max_pages": 100, "max_entries": 50}


class TestBudgetTracker:
    def test_pages_are_bracketed_not_absolute(self):
        pager = Pager(page_size=4, buffer_pages=2)
        pages = [pager.append_page([i]) for i in range(6)]
        pager.read(pages[0])  # traffic before the query must not count
        tracker = QueryBudget(max_pages=2).start(pager.stats)
        pager.read(pages[1])
        pager.read(pages[2])
        tracker.charge()  # exactly at the ceiling: fine
        pager.read(pages[3])
        with pytest.raises(BudgetExceeded) as err:
            tracker.charge()
        assert err.value.resource == BudgetExceeded.PAGES
        assert err.value.limit == 2 and err.value.used == 3

    def test_entries_ceiling(self):
        tracker = QueryBudget(max_entries=10).start(None)
        tracker.charge(result_entries=10)
        with pytest.raises(BudgetExceeded) as err:
            tracker.charge(result_entries=11)
        assert err.value.resource == BudgetExceeded.ENTRIES

    def test_wall_clock_ceiling_with_injected_clock(self):
        ticks = iter([0.0, 0.05, 0.2])
        tracker = QueryBudget(max_wall_s=0.1).start(None, clock=lambda: next(ticks))
        tracker.charge()  # 0.05s elapsed: under
        with pytest.raises(BudgetExceeded) as err:
            tracker.charge()
        assert err.value.resource == BudgetExceeded.WALL_CLOCK
        assert err.value.used == pytest.approx(0.2)

    def test_error_is_structured_and_joinable(self):
        exc = BudgetExceeded(
            BudgetExceeded.PAGES, 10, 14, query_text="(q)", trace_id="t3"
        )
        assert exc.as_dict() == {
            "resource": "pages", "limit": 10, "used": 14,
            "query": "(q)", "trace_id": "t3",
        }
        assert "pages used 14 of at most 10" in str(exc)


class TestEngineCancellation:
    def test_breach_frees_every_intermediate_run(self):
        engine = QueryEngine.from_instance(
            make_instance(), page_size=4, buffer_pages=4
        )
        resident = engine.pager.live_pages
        with pytest.raises(BudgetExceeded):
            engine.run(MERGE_QUERY, budget=QueryBudget(max_pages=0))
        # The leak check: cancellation returned the pager to its
        # pre-query footprint, with no orphaned intermediate runs.
        assert engine.pager.live_pages == resident

    def test_engine_still_works_after_a_breach(self):
        engine = QueryEngine.from_instance(make_instance(), page_size=4)
        with pytest.raises(BudgetExceeded):
            engine.run(QUERY, budget=QueryBudget(max_pages=0))
        result = engine.run(QUERY)
        assert len(result.entries) == 4

    def test_engine_default_budget_applies_and_per_run_overrides(self):
        engine = QueryEngine.from_instance(
            make_instance(), page_size=4, budget=QueryBudget(max_pages=0)
        )
        with pytest.raises(BudgetExceeded):
            engine.run(QUERY)
        generous = QueryBudget(max_pages=10_000)
        assert len(engine.run(QUERY, budget=generous).entries) == 4

    def test_random_instances_never_leak_on_breach(self):
        for seed in range(4):
            instance = random_instance(seed, size=80)
            engine = QueryEngine.from_instance(instance, page_size=8)
            resident = engine.pager.live_pages
            with pytest.raises(BudgetExceeded):
                engine.run("( ? sub ? objectClass=*)", budget=QueryBudget(max_pages=0))
            assert engine.pager.live_pages == resident


class TestServiceSurface:
    def make_service(self, **kwargs):
        registry = MetricsRegistry()
        service = DirectoryService(
            make_instance(), page_size=4, metrics=registry, **kwargs
        )
        service.bind_anonymous()
        return service, registry

    def test_breach_returns_admin_limit_exceeded(self):
        service, registry = self.make_service()
        result = service.search(QUERY, budget=QueryBudget(max_pages=0))
        assert result.code == ResultCode.ADMIN_LIMIT_EXCEEDED
        assert result.entries == [] and result.total_size == 0
        assert result.budget_error is not None
        assert result.budget_error.resource == BudgetExceeded.PAGES
        assert result.budget_error.query_text == QUERY
        assert result.warnings and "cancelled" in result.warnings[0]
        counter = registry.get("repro_budget_exceeded_total")
        assert counter.value(resource="pages") == 1

    def test_service_wide_default_budget(self):
        service, _ = self.make_service(budget=QueryBudget(max_pages=0))
        assert service.search(QUERY).code == ResultCode.ADMIN_LIMIT_EXCEEDED
        # A per-search budget overrides the default.
        ok = service.search(QUERY, budget=QueryBudget(max_pages=10_000))
        assert ok.code == ResultCode.SUCCESS

    def test_cache_hits_are_never_charged(self):
        service, _ = self.make_service()
        assert service.search(QUERY).code == ResultCode.SUCCESS
        # The cached replay costs no page I/O, so a zero-page budget holds.
        replay = service.search(QUERY, budget=QueryBudget(max_pages=0))
        assert replay.code == ResultCode.SUCCESS
        assert replay.cached is True

    def test_breach_lands_in_the_slow_query_log(self):
        service, _ = self.make_service(slow_query_seconds=0.0)
        service.search(QUERY, budget=QueryBudget(max_pages=0))
        records = service.slow_queries.records()
        assert len(records) == 1
        assert records[0].result_size == 0

    def test_breach_does_not_poison_later_searches(self):
        service, registry = self.make_service()
        service.search(QUERY, budget=QueryBudget(max_pages=0))
        # The breached evaluation must not have cached a partial result.
        ok = service.search(QUERY)
        assert ok.code == ResultCode.SUCCESS and len(ok.entries) == 4
        assert registry.get("repro_searches_total").value(code="success") == 1


class TestFederatedBudget:
    def make_federation(self):
        instance = random_instance(29, size=100, forest_roots=2)
        roots = sorted({e.dn for e in instance.roots()}, key=lambda dn: dn.key())
        assignments = {"server%d" % i: [root] for i, root in enumerate(roots)}
        fed = FederatedDirectory.partition(
            instance, assignments, page_size=8, leaf_cache_bytes=0,
            metrics=MetricsRegistry(),
        )
        return fed, roots

    def test_breach_propagates_from_the_coordinator(self):
        fed, roots = self.make_federation()
        query = "(%s ? sub ? objectClass=*)" % roots[1]
        with pytest.raises(BudgetExceeded):
            fed.query("server0", query, budget=QueryBudget(max_entries=0))
        # The federation stays usable after the cancelled query.
        assert len(fed.query("server0", query).entries) > 0
