"""EXPLAIN --analyze: per-operator actual page I/O reconciles exactly
with the pager's global IOStats delta (the ISSUE's acceptance
criterion)."""

import pytest

from repro.engine.optimizer import AccessPlanner, explain
from repro.query.parser import parse_query
from repro.query.semantics import evaluate
from repro.storage.store import DirectoryStore
from repro.workload import random_instance

QUERY = "(& ( ? sub ? kind=alpha) ( ? sub ? weight<50))"


@pytest.fixture
def store_and_instance():
    instance = random_instance(11, size=240)
    store = DirectoryStore.from_instance(instance, page_size=8)
    return store, instance


class TestAnalyzeReconciliation:
    def test_per_operator_io_sums_to_pager_delta(self, store_and_instance):
        store, _instance = store_and_instance
        # Collect statistics up front so the measured window holds only
        # the evaluation; then the tree's per-operator (exclusive) I/O
        # must account for every page the run transferred.
        planner = AccessPlanner(store)
        store.pager.flush()
        before = store.pager.stats.snapshot()
        node = explain(store, parse_query(QUERY), analyze=True, planner=planner)
        delta = store.pager.stats.since(before)
        assert node.total_io() == delta.total
        assert node.total_logical_io() == delta.logical_total
        assert node.total_io() > 0

    def test_actuals_match_true_result_sizes(self, store_and_instance):
        store, instance = store_and_instance
        node = explain(store, parse_query(QUERY), analyze=True)
        assert node.actual == len(evaluate(parse_query(QUERY), instance))
        assert len(node.children) == 2
        for child in node.children:
            assert child.actual is not None
            assert child.actual_io >= 0
            assert child.elapsed >= 0.0

    def test_render_shows_per_operator_io(self, store_and_instance):
        store, _instance = store_and_instance
        node = explain(store, parse_query(QUERY), analyze=True)
        text = node.render()
        assert "actual=" in text
        assert "io=" in text and "lio=" in text

    def test_as_dict_carries_actuals(self, store_and_instance):
        store, _instance = store_and_instance
        node = explain(store, parse_query(QUERY), analyze=True)
        payload = node.as_dict()
        assert payload["actual"] == node.actual
        assert payload["actual_io"] == node.actual_io
        assert [c["actual"] for c in payload["children"]] == [
            c.actual for c in node.children
        ]

    def test_plain_explain_has_no_actuals(self, store_and_instance):
        store, _instance = store_and_instance
        node = explain(store, parse_query(QUERY), analyze=False)
        assert node.actual is None
        assert node.actual_io is None
        assert "actual_io" not in node.as_dict()
