"""The subtree heat map: prefix-depth keying, EWMA decay under an
injected clock, coldest-cell eviction, and ranking."""

import pytest

from repro.model.dn import DN
from repro.obs.heatmap import SubtreeHeatMap


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


COM = DN.parse("dc=com")
ATT = DN.parse("dc=att, dc=com")
RESEARCH = DN.parse("ou=research, dc=att, dc=com")


class TestKeying:
    def test_cells_key_on_the_reversed_dn_prefix(self):
        heat = SubtreeHeatMap(depth=2, clock=FakeClock())
        heat.record_read(RESEARCH)          # prefix: (dc=com, dc=att)
        heat.record_read(ATT)               # same prefix
        heat.record_read(COM)               # shorter dn -> shallower cell
        cells = heat.hottest(10)
        assert len(cells) == 2
        top = cells[0]
        assert top["subtree"] == "dc=att, dc=com"
        assert top["reads_total"] == 2
        assert cells[1]["subtree"] == "dc=com"

    def test_root_dn_labels_as_root(self):
        heat = SubtreeHeatMap(depth=2, clock=FakeClock())
        heat.record_read(DN.parse(""))
        assert heat.hottest(1)[0]["subtree"] == "(root)"

    def test_writes_and_shipped_are_separate_axes(self):
        heat = SubtreeHeatMap(depth=1, clock=FakeClock())
        heat.record_read(COM, pages=7)
        heat.record_write(COM)
        heat.record_shipped(COM, entries=5)
        cell = heat.hottest(1)[0]
        assert cell["reads_total"] == 1
        assert cell["writes_total"] == 1
        assert cell["pages_total"] == 7
        assert cell["shipped_total"] == 5
        assert cell["heat"] == pytest.approx(1 + 1 + 7 + 5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SubtreeHeatMap(depth=0)
        with pytest.raises(ValueError):
            SubtreeHeatMap(capacity=0)
        with pytest.raises(ValueError):
            SubtreeHeatMap(half_life_s=0)


class TestDecay:
    def test_one_half_life_halves_the_decayed_counters(self):
        clock = FakeClock()
        heat = SubtreeHeatMap(depth=1, half_life_s=60.0, clock=clock)
        for _ in range(10):
            heat.record_read(COM, pages=2)
        clock.now += 60.0
        cell = heat.hottest(1)[0]
        assert cell["reads"] == pytest.approx(5.0)
        assert cell["pages"] == pytest.approx(10.0)
        # Lifetime totals never decay.
        assert cell["reads_total"] == 10 and cell["pages_total"] == 20

    def test_ranking_follows_current_load_not_lifetime(self):
        clock = FakeClock()
        heat = SubtreeHeatMap(depth=2, half_life_s=10.0, clock=clock)
        for _ in range(100):
            heat.record_read(ATT)          # historically hot
        clock.now += 200.0                  # 20 half-lives: ~0
        for _ in range(3):
            heat.record_read(COM)          # currently hot
        ranked = heat.hottest(2)
        assert ranked[0]["subtree"] == "dc=com"
        assert ranked[0]["reads_total"] == 3
        assert ranked[1]["reads_total"] == 100

    def test_coldest_cell_is_evicted_at_capacity(self):
        clock = FakeClock()
        heat = SubtreeHeatMap(depth=2, capacity=2, half_life_s=10.0,
                              clock=clock)
        heat.record_read(ATT, amount=100)
        heat.record_read(COM)              # cold
        clock.now += 5.0
        # A genuinely new prefix at capacity evicts the coldest cell.
        heat.record_read(DN.parse("dc=example, dc=org"))
        labels = {c["subtree"] for c in heat.hottest(10)}
        assert "dc=com" not in labels
        assert heat.evicted == 1


class TestRanking:
    def test_by_field_selects_the_axis(self):
        heat = SubtreeHeatMap(depth=1, clock=FakeClock())
        heat.record_write(COM, amount=9)
        heat.record_read(ATT, pages=50)    # depth 1: same dc=com cell
        heat2 = SubtreeHeatMap(depth=2, clock=FakeClock())
        heat2.record_write(COM, amount=9)
        heat2.record_read(ATT, pages=50)
        assert heat2.hottest(1, by="writes")[0]["subtree"] == "dc=com"
        assert heat2.hottest(1, by="pages")[0]["subtree"] == "dc=att, dc=com"

    def test_unknown_axis_is_rejected(self):
        with pytest.raises(ValueError, match="by"):
            SubtreeHeatMap().hottest(1, by="vibes")

    def test_snapshot_is_json_ready(self):
        import json

        clock = FakeClock()
        heat = SubtreeHeatMap(depth=2, half_life_s=60.0, clock=clock)
        heat.record_read(ATT, pages=3)
        snap = heat.snapshot(n=5)
        json.dumps(snap)
        assert snap["depth"] == 2 and snap["cells"] == 1
        assert snap["half_life_s"] == 60.0
        assert snap["hottest"][0]["subtree"] == "dc=att, dc=com"

    def test_reset(self):
        heat = SubtreeHeatMap(clock=FakeClock())
        heat.record_read(COM)
        heat.reset()
        assert len(heat) == 0 and heat.hottest(5) == []
