"""The structured event log: JSON-lines schema, level gating, bound
context, and the zero-cost disabled path."""

import io
import json
import threading

import pytest

from repro.obs.log import (
    LEVELS,
    NULL_LOGGER,
    CapturingLogger,
    EventLogger,
    NullLogger,
)


class TestEventLogger:
    def test_one_json_object_per_line(self):
        log = CapturingLogger(clock=lambda: 12.5)
        log.info("search", code="success", rows=3)
        log.warning("slow_query", query="(q)")
        lines = log.lines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "ts": 12.5, "level": "info", "event": "search",
            "code": "success", "rows": 3,
        }

    def test_keys_are_sorted_for_stable_diffs(self):
        log = CapturingLogger(clock=lambda: 0.0)
        log.info("e", zebra=1, alpha=2)
        keys = list(json.loads(log.lines()[0]))
        assert keys == sorted(keys)

    def test_none_fields_are_elided(self):
        log = CapturingLogger()
        log.info("search", cached=None, retries=None, rows=0)
        event = log.events()[0]
        assert "cached" not in event and "retries" not in event
        assert event["rows"] == 0

    def test_min_level_suppresses_and_counts(self):
        log = EventLogger(io.StringIO(), min_level="warning")
        log.debug("noise")
        log.info("noise")
        log.warning("kept")
        log.error("kept")
        assert log.emitted == 2
        assert log.suppressed == 2
        assert log.enabled_for("warning") and not log.enabled_for("info")

    def test_invalid_min_level_rejected(self):
        with pytest.raises(ValueError):
            EventLogger(io.StringIO(), min_level="loud")

    def test_levels_are_ordered(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]

    def test_bind_merges_fields_and_shares_the_stream(self):
        log = CapturingLogger(clock=lambda: 1.0)
        child = log.bind(server="s1", trace_id="t9")
        grandchild = child.bind(server="s2")  # later bind wins
        child.info("fed.retry", attempt=2)
        grandchild.info("fed.retry")
        events = log.events("fed.retry")  # children write to the parent
        assert events[0]["server"] == "s1" and events[0]["trace_id"] == "t9"
        assert events[1]["server"] == "s2" and events[1]["trace_id"] == "t9"
        assert child._lock is log._lock

    def test_explicit_field_overrides_bound_field(self):
        log = CapturingLogger()
        child = log.bind(server="bound")
        child.info("e", server="explicit")
        assert log.events()[0]["server"] == "explicit"

    def test_to_path_appends(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLogger.to_path(path, clock=lambda: 2.0)
        log.info("first")
        log.stream.close()
        again = EventLogger.to_path(path, clock=lambda: 3.0)
        again.info("second")
        again.stream.close()
        events = [json.loads(line) for line in open(path)]
        assert [e["event"] for e in events] == ["first", "second"]

    def test_default_str_serialisation_for_odd_values(self):
        log = CapturingLogger()
        log.info("e", dn=complex(1, 2))  # not JSON-native: falls to str()
        assert log.events()[0]["dn"] == "(1+2j)"

    def test_concurrent_writers_never_interleave_lines(self):
        log = CapturingLogger()
        per_thread = 400

        def worker(index):
            bound = log.bind(worker=index)
            for i in range(per_thread):
                bound.info("tick", i=i)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = log.events("tick")  # json.loads would fail on a torn line
        assert len(events) == 8 * per_thread


class TestNullLogger:
    def test_everything_is_a_cheap_no_op(self):
        assert NULL_LOGGER.enabled is False
        assert NULL_LOGGER.enabled_for("error") is False
        assert NULL_LOGGER.bind(trace_id="t") is NULL_LOGGER
        NULL_LOGGER.debug("e")
        NULL_LOGGER.info("e", anything=1)
        NULL_LOGGER.warning("e")
        NULL_LOGGER.error("e")
        NULL_LOGGER.log("info", "e")
        assert NULL_LOGGER.emitted == 0

    def test_singleton_is_a_nulllogger(self):
        assert isinstance(NULL_LOGGER, NullLogger)
