"""Benchmark telemetry: BENCH_*.json emission and validation."""

import json

import pytest

from repro.obs.telemetry import BenchEmitter, load_bench, validate_bench

ROWS = [{"n": 100, "io": 40}, {"n": 200, "io": 81}]


class TestBenchEmitter:
    def test_emit_writes_valid_document(self, tmp_path):
        emitter = BenchEmitter(out_dir=str(tmp_path))
        emitter.add_timing("e13_boolean", 0.25)
        emitter.add_timing("e13_boolean", 0.75)
        path = emitter.emit("e13_boolean", "E13: and/or", ROWS,
                            meta={"page_size": 16})
        assert path == emitter.path_for("e13_boolean")
        payload = load_bench(path)
        assert validate_bench(payload) == []
        assert payload["experiment"] == "e13_boolean"
        assert payload["tables"]["E13: and/or"] == ROWS
        assert payload["timings_s"] == {"count": 2, "total": 1.0, "max": 0.75}
        assert payload["meta"]["page_size"] == 16

    def test_repeated_emits_merge_tables(self, tmp_path):
        emitter = BenchEmitter(out_dir=str(tmp_path))
        emitter.emit("exp", "first", ROWS)
        path = emitter.emit("exp", "second", ROWS[:1])
        payload = load_bench(path)
        assert sorted(payload["tables"]) == ["first", "second"]

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "out"))
        emitter = BenchEmitter()
        path = emitter.emit("exp", "t", ROWS)
        assert str(tmp_path / "out") in path

    def test_bad_experiment_name_rejected(self, tmp_path):
        emitter = BenchEmitter(out_dir=str(tmp_path))
        with pytest.raises(ValueError):
            emitter.emit("no spaces allowed", "t", ROWS)


class TestValidateBench:
    def payload(self):
        return {
            "schema_version": 1,
            "experiment": "e5_updates",
            "tables": {"t": [{"n": 1}]},
            "timings_s": {"count": 1, "total": 0.1, "max": 0.1},
            "meta": {},
        }

    def test_accepts_well_formed(self):
        assert validate_bench(self.payload()) == []

    def test_flags_schema_version(self):
        bad = self.payload()
        bad["schema_version"] = 2
        assert any("schema_version" in p for p in validate_bench(bad))

    def test_flags_missing_tables(self):
        bad = self.payload()
        bad["tables"] = {}
        assert any("tables" in p for p in validate_bench(bad))

    def test_flags_rowless_table(self):
        bad = self.payload()
        bad["tables"] = {"t": []}
        assert any("no rows" in p for p in validate_bench(bad))

    def test_flags_non_object_rows(self):
        bad = self.payload()
        bad["tables"] = {"t": [1, 2]}
        assert any("non-object" in p for p in validate_bench(bad))

    def test_flags_missing_timings(self):
        bad = self.payload()
        del bad["timings_s"]
        assert any("timings_s" in p for p in validate_bench(bad))

    def test_flags_bad_experiment_name(self):
        bad = self.payload()
        bad["experiment"] = "oh no"
        assert any("experiment" in p for p in validate_bench(bad))


class TestBenchHelpers:
    def test_load_bench_reads_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema_version": 1}))
        assert load_bench(str(path)) == {"schema_version": 1}
