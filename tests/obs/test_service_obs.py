"""DirectoryService observability: search spans, metrics, the slow-query
log, and hardened update-listener dispatch."""

import pytest

from repro.model.instance import DirectoryInstance
from repro.model.schema import DirectorySchema
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.server import DirectoryService, ResultCode
from repro.storage.maintenance import UpdatableDirectory

QUERY = "(dc=com ? sub ? grade=5)"


def make_instance() -> DirectoryInstance:
    schema = DirectorySchema()
    schema.add_attribute("dc", "string")
    schema.add_attribute("uid", "string")
    schema.add_attribute("grade", "int")
    schema.add_class("dcObject", {"dc"})
    schema.add_class("account", {"uid", "grade"})
    instance = DirectoryInstance(schema)
    instance.add("dc=com", ["dcObject"], dc="com")
    for i in range(12):
        instance.add(
            "uid=u%d, dc=com" % i, ["account"], uid="u%d" % i, grade=i % 3 + 4
        )
    return instance


@pytest.fixture
def observed():
    tracer = Tracer()
    registry = MetricsRegistry()
    service = DirectoryService(
        make_instance(),
        page_size=4,
        tracer=tracer,
        metrics=registry,
        slow_query_seconds=0.0,  # everything is "slow": deterministic log
    )
    service.bind_anonymous()
    return service, tracer, registry


class TestSearchSpans:
    def test_search_span_structure(self, observed):
        service, tracer, _registry = observed
        service.search(QUERY)
        root = tracer.last_root()
        assert root.name == "search"
        names = [child.name for child in root.children]
        assert names[0] == "parse"
        assert "cache-lookup" in names
        assert "execute" in names          # uncached: the engine ran
        assert names[-1] == "acl-filter"
        assert root.attrs["code"] == ResultCode.SUCCESS
        assert root.attrs["cached"] is False

    def test_cache_hit_skips_the_engine(self, observed):
        service, tracer, _registry = observed
        service.search(QUERY)
        service.search(QUERY)
        root = tracer.last_root()
        names = [child.name for child in root.children]
        assert "execute" not in names
        assert root.find("cache-lookup").attrs["hit"] is True
        assert root.attrs["cached"] is True


class TestSearchMetrics:
    def test_counters_and_histograms_populate(self, observed):
        service, _tracer, registry = observed
        service.search(QUERY)
        service.search(QUERY)
        assert registry.get("repro_searches_total").value(code="success") == 2
        lookups = registry.get("repro_cache_lookups_total")
        assert lookups.value(outcome="miss") == 1
        assert lookups.value(outcome="hit") == 1
        assert registry.get("repro_search_seconds").count() == 2
        assert registry.get("repro_search_result_entries").count() == 2
        assert registry.get("repro_search_logical_io").count() == 1  # uncached only
        assert 0.0 <= registry.get("repro_buffer_hit_rate").value() <= 1.0

    def test_exposition_includes_service_metrics(self, observed):
        service, _tracer, registry = observed
        service.search(QUERY)
        text = registry.to_prometheus()
        assert 'repro_searches_total{code="success"} 1' in text
        assert "repro_search_seconds_bucket" in text


class TestSlowQueryLog:
    def test_threshold_zero_logs_every_search(self, observed):
        service, _tracer, registry = observed
        service.search(QUERY)
        assert len(service.slow_queries) == 1
        record = service.slow_queries.records()[0]
        assert record.query_text == QUERY
        assert record.io_total > 0
        assert registry.get("repro_slow_queries_total").value() == 1

    def test_unreachable_threshold_logs_nothing(self):
        service = DirectoryService(
            make_instance(), page_size=4, metrics=MetricsRegistry(),
            slow_query_seconds=3600.0,
        )
        service.bind_anonymous()
        service.search(QUERY)
        assert len(service.slow_queries) == 0

    def test_disabled_by_default(self):
        service = DirectoryService(
            make_instance(), page_size=4, metrics=MetricsRegistry()
        )
        service.bind_anonymous()
        service.search(QUERY)
        assert not service.slow_queries.enabled
        assert len(service.slow_queries) == 0


class TestListenerHardening:
    def test_broken_listener_does_not_abort_or_starve(self):
        registry = MetricsRegistry()
        directory = UpdatableDirectory.from_instance(
            make_instance(), page_size=4, metrics=registry
        )
        seen = []

        def broken(kind, dn, subtree):
            raise RuntimeError("boom")

        def recorder(kind, dn, subtree):
            seen.append((kind, str(dn), subtree))

        directory.add_update_listener(broken)
        directory.add_update_listener(recorder)  # registered *after* broken
        directory.delete("uid=u0, dc=com")
        assert seen == [("delete", "uid=u0, dc=com", False)]
        assert directory.lookup("uid=u0, dc=com") is None
        assert directory.listener_errors == 1
        metric = registry.get("repro_update_listener_errors_total")
        assert metric.value(kind="delete") == 1

    def test_compactions_counted(self):
        registry = MetricsRegistry()
        directory = UpdatableDirectory.from_instance(
            make_instance(), page_size=4, metrics=registry
        )
        directory.delete("uid=u1, dc=com")
        directory.compact()
        assert registry.get("repro_compactions_total").value() == 1
