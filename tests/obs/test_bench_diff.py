"""The bench-regression gate: compare_bench field semantics, directory
diffs, and the CLI exit-code contract the CI perf-gate job relies on."""

import copy
import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.telemetry import (
    compare_bench,
    diff_bench_dirs,
    is_timing_field,
)

BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


def artifact(rows=None, title="E99: synthetic", experiment="e99"):
    return {
        "schema_version": 1,
        "experiment": experiment,
        "tables": {title: rows if rows is not None else [
            {"op": "and", "logical I/O": 100, "result": 50, "hit rate": 0.9},
        ]},
        "timings_s": {"total": 1.0},
        "meta": {"page_size": 16},
    }


class TestTimingClassifier:
    def test_wall_clock_names_are_timing(self):
        for name in ("ms/query", "elapsed s", "wall_s", "latency", "speedup",
                     "build time", "queries/s"):
            assert is_timing_field(name), name

    def test_deterministic_names_are_not(self):
        for name in ("logical I/O", "result", "hit rate", "messages",
                     "entries", "pages"):
            assert not is_timing_field(name), name


class TestCompareBench:
    def test_identical_artifacts_have_no_regressions(self):
        old = artifact()
        report = compare_bench(old, copy.deepcopy(old))
        assert report["regressions"] == []
        assert report["compared_fields"] == 4  # op is non-numeric, compared too
        assert report["experiment"] == "e99"

    def test_cost_increase_beyond_tolerance_regresses(self):
        old, new = artifact(), artifact()
        new["tables"]["E99: synthetic"][0]["logical I/O"] = 125
        report = compare_bench(old, new, tolerance=0.1)
        assert len(report["regressions"]) == 1
        entry = report["regressions"][0]
        assert entry["field"] == "logical I/O"
        assert entry["old"] == 100 and entry["new"] == 125

    def test_cost_increase_within_tolerance_passes(self):
        old, new = artifact(), artifact()
        new["tables"]["E99: synthetic"][0]["logical I/O"] = 105
        assert compare_bench(old, new, tolerance=0.1)["regressions"] == []

    def test_higher_is_better_fields_regress_downward(self):
        old, new = artifact(), artifact()
        new["tables"]["E99: synthetic"][0]["hit rate"] = 0.5
        report = compare_bench(old, new, tolerance=0.1)
        assert [r["field"] for r in report["regressions"]] == ["hit rate"]
        # ... and improve upward (past the tolerance band).
        new["tables"]["E99: synthetic"][0]["hit rate"] = 1.0
        report = compare_bench(old, new, tolerance=0.1)
        assert report["regressions"] == []
        assert [i["field"] for i in report["improvements"]] == ["hit rate"]

    def test_timing_fields_are_skipped_unless_opted_in(self):
        old, new = artifact(), artifact()
        old["tables"]["E99: synthetic"][0]["ms/query"] = 10.0
        new["tables"]["E99: synthetic"][0]["ms/query"] = 100.0
        report = compare_bench(old, new, tolerance=0.1)
        assert report["regressions"] == []
        assert report["skipped_timing_fields"] == 1
        gated = compare_bench(old, new, tolerance=0.1, timing_tolerance=0.5)
        assert [r["field"] for r in gated["regressions"]] == ["ms/query"]

    def test_changed_non_numeric_value_regresses(self):
        old, new = artifact(), artifact()
        new["tables"]["E99: synthetic"][0]["op"] = "or"
        report = compare_bench(old, new)
        assert [r["field"] for r in report["regressions"]] == ["op"]

    def test_missing_table_row_and_field_all_regress(self):
        old = artifact(rows=[{"a": 1}, {"a": 2}])
        gone_table = copy.deepcopy(old)
        gone_table["tables"] = {}
        assert len(compare_bench(old, gone_table)["regressions"]) == 1
        fewer_rows = copy.deepcopy(old)
        fewer_rows["tables"]["E99: synthetic"] = [{"a": 1}]
        assert compare_bench(old, fewer_rows)["regressions"]
        gone_field = copy.deepcopy(old)
        del gone_field["tables"]["E99: synthetic"][0]["a"]
        assert compare_bench(old, gone_field)["regressions"]

    def test_additions_never_fail_the_gate(self):
        old, new = artifact(), artifact()
        new["tables"]["E99: synthetic"][0]["new metric"] = 7
        new["tables"]["E100: extra"] = [{"b": 1}]
        new["tables"]["E99: synthetic"].append({"op": "or"})
        report = compare_bench(old, new)
        assert report["regressions"] == []
        assert report["added"] == [
            "table 'E100: extra'",
            "table 'E99: synthetic' rows 1..2",
        ]


class TestDiffBenchDirs:
    def _copy_baselines(self, tmp_path):
        fresh = tmp_path / "fresh"
        shutil.copytree(BASELINES, fresh)
        return fresh

    def test_identical_directories_pass(self, tmp_path):
        fresh = self._copy_baselines(tmp_path)
        report = diff_bench_dirs(str(BASELINES), str(fresh), tolerance=0.1)
        assert report["regressions_total"] == 0
        baselines = len(list(BASELINES.glob("BENCH_*.json")))
        assert len(report["artifacts"]) == baselines >= 7

    def test_missing_artifact_is_a_regression(self, tmp_path):
        fresh = self._copy_baselines(tmp_path)
        (fresh / "BENCH_e13_boolean.json").unlink()
        report = diff_bench_dirs(str(BASELINES), str(fresh), tolerance=0.1)
        assert report["regressions_total"] == 1
        missing = report["artifacts"][0]
        assert missing["artifact"] == "BENCH_e13_boolean.json"
        assert "missing" in missing["regressions"][0]["problem"]

    def test_synthetic_2x_slowdown_fails_the_gate(self, tmp_path):
        # The acceptance scenario: double every logical-I/O count in a
        # baseline copy (a 2x cost slowdown) and the gate must fail.
        fresh = self._copy_baselines(tmp_path)
        path = fresh / "BENCH_e13_boolean.json"
        payload = json.loads(path.read_text())
        for row in payload["tables"]["E13: boolean merge I/O vs input size"]:
            row["logical I/O"] *= 2
            row["I/O per input page"] *= 2
        path.write_text(json.dumps(payload))
        report = diff_bench_dirs(str(BASELINES), str(fresh), tolerance=0.1)
        assert report["regressions_total"] >= 24  # 12 rows x 2 fields
        assert main([
            "bench-diff", str(BASELINES), str(fresh), "--tolerance", "0.1",
        ]) == 1

    def test_cli_exit_codes_and_report_file(self, tmp_path, capsys):
        fresh = self._copy_baselines(tmp_path)
        report_path = tmp_path / "diff.json"
        code = main([
            "bench-diff", str(BASELINES), str(fresh),
            "--report", str(report_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ok" in out
        written = json.loads(report_path.read_text())
        assert written["regressions_total"] == 0

    def test_cli_single_file_pair(self, capsys):
        path = str(BASELINES / "BENCH_e20_cache.json")
        assert main(["bench-diff", path, path]) == 0
        assert "BENCH_e20_cache.json: ok" in capsys.readouterr().out
