"""Metric history: registry flattening, windowed deltas/rates, the
bounded ring, and pull-based sampling -- all under an injected clock."""

import json

import pytest

from repro.obs.history import MetricHistory
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


@pytest.fixture
def stack():
    registry = MetricsRegistry()
    clock = FakeClock()
    history = MetricHistory(registry=registry, capacity=8, clock=clock)
    searches = registry.counter(
        "repro_searches_total", "Searches", labelnames=("code",)
    )
    latency = registry.histogram(
        "repro_search_seconds", "Latency", buckets=(0.001, 0.01, 0.1)
    )
    return registry, clock, history, searches, latency


class TestSampling:
    def test_value_reads_the_newest_sample(self, stack):
        _, clock, history, searches, _ = stack
        searches.inc(3, code="success")
        searches.inc(1, code="error")
        history.sample()
        assert history.value("repro_searches_total") == 4
        assert history.value(
            "repro_searches_total", labels={"code": "success"}
        ) == 3
        assert history.value("repro_nope") is None

    def test_histograms_flatten_to_sum_count_and_quantiles(self, stack):
        _, _, history, _, latency = stack
        for value in (0.002, 0.003, 0.004, 0.02):
            latency.observe(value)
        history.sample()
        assert history.value("repro_search_seconds", field="count") == 4
        assert history.value(
            "repro_search_seconds", field="sum"
        ) == pytest.approx(0.029)
        p95 = history.value("repro_search_seconds", field="p95")
        assert p95 is not None and p95 > 0

    def test_delta_and_rate_over_the_window(self, stack):
        _, clock, history, searches, _ = stack
        searches.inc(10, code="success")
        history.sample()
        clock.now = 5.0
        searches.inc(40, code="success")
        history.sample()
        assert history.delta("repro_searches_total", 60.0) == 40
        assert history.rate("repro_searches_total", 60.0) == pytest.approx(8.0)
        # Window excludes the old point: one sample -> no rate.
        assert history.rate("repro_searches_total", 1.0) is None

    def test_rate_needs_two_points(self, stack):
        _, _, history, searches, _ = stack
        searches.inc(5, code="success")
        history.sample()
        assert history.rate("repro_searches_total", 60.0) is None

    def test_maybe_sample_is_rate_limited_by_the_injected_clock(self, stack):
        _, clock, history, _, _ = stack
        assert history.maybe_sample(min_interval_s=1.0) is not None
        assert history.maybe_sample(min_interval_s=1.0) is None
        clock.now = 1.0
        assert history.maybe_sample(min_interval_s=1.0) is not None
        assert history.taken == 2

    def test_ring_is_bounded(self, stack):
        _, clock, history, _, _ = stack
        for step in range(20):
            clock.now = float(step)
            history.sample()
        assert len(history) == 8
        assert history.taken == 20
        assert history.snapshots()[0].ts == 12.0

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            MetricHistory(registry=MetricsRegistry(), capacity=1)


class TestSerialisation:
    def test_as_dicts_is_json_ready_and_limitable(self, stack):
        _, clock, history, searches, _ = stack
        searches.inc(1, code="success")
        history.sample()
        clock.now = 2.0
        history.sample()
        dumped = history.as_dicts(limit=1, metric="repro_searches_total")
        json.dumps(dumped)
        assert len(dumped) == 1
        assert dumped[0]["ts"] == 2.0
        series = dumped[0]["metrics"]["repro_searches_total"]["series"]
        assert series[0]["labels"] == {"code": "success"}
        assert series[0]["value"] == 1
