"""Every worked query in the paper, run end-to-end on the reconstructed
Figure 11/12 directories through the external-memory engine (experiment
E12 of DESIGN.md)."""

import pytest

from repro.apps import qos, tops


@pytest.fixture(scope="module")
def qos_engine():
    directory = qos.build_paper_fragment()
    return directory, directory.engine(page_size=8)


@pytest.fixture(scope="module")
def tops_engine():
    directory = tops.build_paper_fragment()
    # A busy subscriber so Example 6.2's count(>10) threshold is reachable.
    directory.add_subscriber("busy", "busy person", "busy")
    for index in range(12):
        directory.add_qhp("busy", "qhp%02d" % index, priority=index + 1)
    return directory, directory.engine(page_size=8)


class TestSection5:
    def test_example_5_1_children(self, tops_engine):
        """Organizational units that directly contain a jagadish entry."""
        _directory, engine = tops_engine
        result = engine.run(
            "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)"
            "   (dc=att, dc=com ? sub ? surName=jagadish))"
        )
        assert result.dns() == [
            "ou=userProfiles, dc=research, dc=att, dc=com"
        ]

    def test_example_5_2_ancestors(self, qos_engine):
        """Traffic profiles used for network policies: all profiles in the
        fragment are under ou=networkPolicies, so all qualify."""
        _directory, engine = qos_engine
        result = engine.run(
            "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
            "   (dc=att, dc=com ? sub ? ou=networkPolicies))"
        )
        names = {dn.split(",")[0] for dn in result.dns()}
        assert names == {
            "TPName=csplitOff", "TPName=ftpSplit", "TPName=lsplitOff", "TPName=smtpIn",
        }

    def test_example_5_2_excludes_unused_profiles(self, qos_engine):
        """A profile outside any networkPolicies subtree is excluded."""
        directory, _old_engine = qos_engine
        fresh = qos.build_paper_fragment()
        fresh.instance.add(
            "TPName=orphan, dc=research, dc=att, dc=com",
            ["trafficProfile"], TPName="orphan", SourcePort=25,
        )
        engine = fresh.engine()
        result = engine.run(
            "(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
            "   (dc=att, dc=com ? sub ? ou=networkPolicies))"
        )
        assert not any("orphan" in dn for dn in result.dns())
        plain = engine.run("(dc=att, dc=com ? sub ? objectClass=trafficProfile)")
        assert any("orphan" in dn for dn in plain.dns())

    def test_example_5_3_smtp_subnets(self, qos_engine):
        """Which subnets have profiles governing SMTP traffic (port 25),
        with nearest-dcObject semantics."""
        _directory, engine = qos_engine
        result = engine.run(
            "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)"
            "    (& (dc=att, dc=com ? sub ? SourcePort=25)"
            "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
            "    (dc=att, dc=com ? sub ? objectClass=dcObject))"
        )
        assert result.dns() == ["dc=research, dc=att, dc=com"]


class TestSection6:
    def test_example_6_1_multi_period_policies(self, qos_engine):
        """Policies with more than one validity period: exactly dso."""
        _directory, engine = qos_engine
        result = engine.run(
            "(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
            "   count(SLAPVPRef) > 1)"
        )
        assert result.dns() == [
            "SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        ]

    def test_example_6_2_subscribers_with_many_qhps(self, tops_engine):
        """TOPS subscribers with more than 10 query handling profiles."""
        _directory, engine = tops_engine
        result = engine.run(
            "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)"
            "   (dc=att, dc=com ? sub ? objectClass=QHP)"
            "   count($2) > 10)"
        )
        assert result.dns() == [
            "uid=busy, ou=userProfiles, dc=research, dc=att, dc=com"
        ]


class TestSection7:
    def test_example_7_1_vd(self, qos_engine):
        """Policies whose traffic profiles govern SMTP traffic."""
        _directory, engine = qos_engine
        result = engine.run(
            "(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
            "    (& (dc=att, dc=com ? sub ? SourcePort=25)"
            "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
            "    SLATPRef)"
        )
        assert result.dns() == [
            "SLAPolicyName=mail, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        ]

    def test_example_7_1_extended_dv(self, qos_engine):
        """The action of the highest-priority SMTP-governing policy."""
        _directory, engine = qos_engine
        result = engine.run(
            "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)"
            "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)"
            "           (& (dc=att, dc=com ? sub ? SourcePort=25)"
            "              (dc=att, dc=com ? sub ? objectClass=trafficProfile))"
            "           SLATPRef)"
            "       min(SLARulePriority)=min(min(SLARulePriority)))"
            "    SLADSActRef)"
        )
        assert result.dns() == [
            "DSActionName=allowMail, ou=SLADSAction, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"
        ]


class TestSection8:
    def test_p_expressible_via_ac(self, qos_engine):
        """Theorem 8.2(d): (p Q1 Q2) == (ac Q1 Q2 whole-instance)."""
        _directory, engine = qos_engine
        p_result = engine.run(
            "(p (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
            "   (dc=att, dc=com ? sub ? ou=trafficProfile))"
        )
        ac_result = engine.run(
            "(ac (dc=att, dc=com ? sub ? objectClass=trafficProfile)"
            "    (dc=att, dc=com ? sub ? ou=trafficProfile)"
            "    ( ? sub ? objectClass=*))"
        )
        assert p_result.dns() == ac_result.dns()
        assert len(p_result) == 4  # all four profiles sit under the container

    def test_c_expressible_via_dc(self, tops_engine):
        """The dual identity for children via dc."""
        _directory, engine = tops_engine
        c_result = engine.run(
            "(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)"
            "   (dc=att, dc=com ? sub ? objectClass=QHP))"
        )
        dc_result = engine.run(
            "(dc (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)"
            "    (dc=att, dc=com ? sub ? objectClass=QHP)"
            "    ( ? sub ? objectClass=*))"
        )
        assert c_result.dns() == dc_result.dns()
