"""The write-ahead log: frame format, group commit, crash points.

The recovery contract under test (Acceptance: crash-recovery property):
for every seeded crash point, recovery replays deterministically, every
acknowledged (synced) record is present, and no partial record is ever
applied.
"""

import os
import threading

import pytest

from repro.model.dn import DN
from repro.model.entry import Entry
from repro.txn.records import ChangeRecord
from repro.txn.wal import (
    CrashPlan,
    SimulatedCrash,
    WalError,
    WriteAheadLog,
    encode_record,
    scan_wal,
)


def _record(lsn, name="x", kind="add"):
    dn = DN.parse("name=%s, dc=com" % name)
    entry = None
    if kind in ("add", "modify"):
        entry = Entry(dn, ["node"], {"name": [name]})
    return ChangeRecord(kind, dn, entry=entry, lsn=lsn)


class TestFrameFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        for lsn in range(1, 6):
            wal.commit(_record(lsn, "n%d" % lsn))
        wal.close()
        records, valid_bytes, torn = scan_wal(path)
        assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
        assert not torn
        assert valid_bytes == os.path.getsize(path)
        assert records[2].entry.values("name") == ("n3",)

    def test_delete_subtree_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(ChangeRecord("delete", DN.parse("o=a, dc=com"), subtree=True, lsn=1))
        wal.close()
        records, _, _ = scan_wal(path)
        assert records[0].kind == "delete"
        assert records[0].subtree is True

    def test_torn_tail_detected_and_prefix_kept(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1, "keep"))
        wal.close()
        whole = os.path.getsize(path)
        frame = encode_record(_record(2, "cut"))
        with open(path, "ab") as stream:
            stream.write(frame[: len(frame) // 2])
        records, valid_bytes, torn = scan_wal(path)
        assert torn
        assert valid_bytes == whole
        assert [r.lsn for r in records] == [1]

    def test_corrupt_checksum_stops_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1))
        wal.commit(_record(2))
        wal.close()
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # flip one payload byte of the last record
        with open(path, "wb") as stream:
            stream.write(data)
        records, _, torn = scan_wal(path)
        assert torn
        assert [r.lsn for r in records] == [1]

    def test_open_existing_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1))
        wal.close()
        with open(path, "ab") as stream:
            stream.write(b"\x00\x01garbage")
        wal2, records, torn = WriteAheadLog.open_existing(path, fsync=False)
        assert torn
        assert [r.lsn for r in records] == [1]
        # The tail was physically removed: appending cannot splice onto
        # garbage, and a second scan is clean.
        wal2.commit(_record(2))
        wal2.close()
        records, _, torn = scan_wal(path)
        assert [r.lsn for r in records] == [1, 2]
        assert not torn


class TestAppendDiscipline:
    def test_lsn_must_be_assigned(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), fsync=False)
        with pytest.raises(WalError):
            wal.append(ChangeRecord("delete", DN.parse("dc=com")))

    def test_non_monotone_lsn_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), fsync=False)
        wal.append(_record(2))
        with pytest.raises(WalError):
            wal.append(_record(2))

    def test_sync_past_buffered_fails_loudly(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), fsync=False)
        with pytest.raises(WalError):
            wal.sync(7)

    def test_truncate_restarts_empty(self, tmp_path):
        path = str(tmp_path / "w")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1))
        wal.commit(_record(2))
        wal.truncate(2)
        assert os.path.getsize(path) == 0
        assert wal.durable_lsn == 2
        wal.commit(_record(3))
        records, _, _ = scan_wal(path)
        assert [r.lsn for r in records] == [3]


class TestGroupCommit:
    def test_concurrent_committers_share_flushes(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), fsync=False, flush_delay_s=0.003)
        threads = 8
        per_thread = 4
        lock = threading.Lock()
        next_lsn = [1]
        barrier = threading.Barrier(threads)

        def worker(_index):
            barrier.wait()
            for _ in range(per_thread):
                with lock:
                    lsn = next_lsn[0]
                    next_lsn[0] += 1
                    wal.append(_record(lsn, "n%d" % lsn))
                wal.sync(lsn)

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        total = threads * per_thread
        assert wal.appends == total
        assert wal.durable_lsn == total
        # The whole point: far fewer fsync batches than records.
        assert wal.flushes < total
        records, _, torn = scan_wal(wal.path)
        assert not torn
        assert [r.lsn for r in records] == list(range(1, total + 1))
        wal.close()

    def test_crash_poisons_every_waiter(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path / "w"),
            fsync=False,
            flush_delay_s=0.005,
            crash_plan=CrashPlan(crash_at_flush=0, torn_bytes=3),
        )
        outcomes = []
        barrier = threading.Barrier(4)

        def worker(index):
            barrier.wait()
            try:
                wal.append(_record(index + 1, "n%d" % index))
                wal.sync(index + 1)
                outcomes.append("acked")
            except SimulatedCrash:
                outcomes.append("crashed")
            except WalError:
                outcomes.append("dead")

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        # Nobody got an ack: the crashed flush acknowledged nothing.
        assert "acked" not in outcomes
        # Recovery sees at most a torn fragment, never a whole record.
        records, _, _ = scan_wal(wal.path)
        assert records == []


class TestCrashMatrix:
    def test_recovery_is_deterministic_and_acked_complete(self, tmp_path):
        """Sweep the crash point across flushes and the tear across byte
        offsets; after every crash, recovery holds exactly the acked
        prefix (frames are ~100 bytes; tears land before, inside and
        beyond one frame's header and payload)."""
        for crash_at in (0, 1, 2, 3):
            for torn_bytes in (0, 3, 11, 60, 150):
                data_dir = tmp_path / ("case_%d_%d" % (crash_at, torn_bytes))
                data_dir.mkdir()
                path = str(data_dir / "wal.log")
                wal = WriteAheadLog(
                    path,
                    fsync=False,
                    crash_plan=CrashPlan(crash_at, torn_bytes),
                )
                acked = []
                for lsn in range(1, 7):
                    try:
                        wal.commit(_record(lsn, "n%d" % lsn))
                        acked.append(lsn)
                    except SimulatedCrash:
                        break
                assert len(acked) == crash_at, "crash fired at the wrong flush"
                first = scan_wal(path)
                # Physical truncation then rescan: same records (determinism).
                _wal2, records, _torn = WriteAheadLog.open_existing(path, fsync=False)
                _wal2.close()
                second = scan_wal(path)
                assert [r.lsn for r in first[0]] == [r.lsn for r in records]
                assert [r.lsn for r in second[0]] == [r.lsn for r in records]
                assert second[2] is False  # tail gone after truncation
                recovered = [r.lsn for r in records]
                # Every acked commit is present, in order, as a prefix.
                assert recovered[: len(acked)] == acked
                # No invented or reordered records: recovery is a prefix
                # of what was submitted.  A tear wide enough to cover a
                # whole frame may persist the next record even though its
                # ack was lost -- that is legitimate; a *partial* frame
                # never surfaces (checksum + length gate).
                assert recovered == list(range(1, len(recovered) + 1))
                assert len(recovered) <= len(acked) + 1
                for record in records:
                    assert record.entry is not None
                    assert record.entry.values("name") == ("n%d" % record.lsn,)
