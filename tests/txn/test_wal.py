"""The write-ahead log: frame format, group commit, crash points.

The recovery contract under test (Acceptance: crash-recovery property):
for every seeded crash point, recovery replays deterministically, every
acknowledged (synced) record is present, and no partial record is ever
applied.
"""

import os
import threading

import pytest

from repro.model.dn import DN
from repro.model.entry import Entry
from repro.txn.records import ChangeRecord
from repro.txn.wal import (
    CrashPlan,
    SimulatedCrash,
    WalError,
    WriteAheadLog,
    encode_record,
    scan_wal,
)


def _record(lsn, name="x", kind="add"):
    dn = DN.parse("name=%s, dc=com" % name)
    entry = None
    if kind in ("add", "modify"):
        entry = Entry(dn, ["node"], {"name": [name]})
    return ChangeRecord(kind, dn, entry=entry, lsn=lsn)


class TestFrameFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        for lsn in range(1, 6):
            wal.commit(_record(lsn, "n%d" % lsn))
        wal.close()
        records, valid_bytes, torn = scan_wal(path)
        assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
        assert not torn
        assert valid_bytes == os.path.getsize(path)
        assert records[2].entry.values("name") == ("n3",)

    def test_delete_subtree_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(ChangeRecord("delete", DN.parse("o=a, dc=com"), subtree=True, lsn=1))
        wal.close()
        records, _, _ = scan_wal(path)
        assert records[0].kind == "delete"
        assert records[0].subtree is True

    def test_torn_tail_detected_and_prefix_kept(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1, "keep"))
        wal.close()
        whole = os.path.getsize(path)
        frame = encode_record(_record(2, "cut"))
        with open(path, "ab") as stream:
            stream.write(frame[: len(frame) // 2])
        records, valid_bytes, torn = scan_wal(path)
        assert torn
        assert valid_bytes == whole
        assert [r.lsn for r in records] == [1]

    def test_corrupt_checksum_stops_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1))
        wal.commit(_record(2))
        wal.close()
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # flip one payload byte of the last record
        with open(path, "wb") as stream:
            stream.write(data)
        records, _, torn = scan_wal(path)
        assert torn
        assert [r.lsn for r in records] == [1]

    def test_open_existing_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1))
        wal.close()
        with open(path, "ab") as stream:
            stream.write(b"\x00\x01garbage")
        wal2, records, torn = WriteAheadLog.open_existing(path, fsync=False)
        assert torn
        assert [r.lsn for r in records] == [1]
        # The tail was physically removed: appending cannot splice onto
        # garbage, and a second scan is clean.
        wal2.commit(_record(2))
        wal2.close()
        records, _, torn = scan_wal(path)
        assert [r.lsn for r in records] == [1, 2]
        assert not torn


class TestAppendDiscipline:
    def test_lsn_must_be_assigned(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), fsync=False)
        with pytest.raises(WalError):
            wal.append(ChangeRecord("delete", DN.parse("dc=com")))

    def test_non_monotone_lsn_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), fsync=False)
        wal.append(_record(2))
        with pytest.raises(WalError):
            wal.append(_record(2))

    def test_sync_past_buffered_fails_loudly(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), fsync=False)
        with pytest.raises(WalError):
            wal.sync(7)

    def test_truncate_restarts_empty(self, tmp_path):
        path = str(tmp_path / "w")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1))
        wal.commit(_record(2))
        wal.truncate(2)
        assert os.path.getsize(path) == 0
        assert wal.durable_lsn == 2
        wal.commit(_record(3))
        records, _, _ = scan_wal(path)
        assert [r.lsn for r in records] == [3]


class TestGroupCommit:
    def test_concurrent_committers_share_flushes(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), fsync=False, flush_delay_s=0.003)
        threads = 8
        per_thread = 4
        lock = threading.Lock()
        next_lsn = [1]
        barrier = threading.Barrier(threads)

        def worker(_index):
            barrier.wait()
            for _ in range(per_thread):
                with lock:
                    lsn = next_lsn[0]
                    next_lsn[0] += 1
                    wal.append(_record(lsn, "n%d" % lsn))
                wal.sync(lsn)

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        total = threads * per_thread
        assert wal.appends == total
        assert wal.durable_lsn == total
        # The whole point: far fewer fsync batches than records.
        assert wal.flushes < total
        records, _, torn = scan_wal(wal.path)
        assert not torn
        assert [r.lsn for r in records] == list(range(1, total + 1))
        wal.close()

    def test_group_commit_batch_metric_accounts_every_record(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        wal = WriteAheadLog(
            str(tmp_path / "w"), fsync=False, metrics=registry
        )
        for lsn in range(1, 6):
            wal.commit(_record(lsn))
        wal.close()
        batches = registry.get("repro_wal_group_commit_batch").as_dict()
        row = batches["values"][0]
        # One flush per solo commit; the batch sizes sum to the records.
        assert row["count"] == wal.flushes
        assert row["sum"] == wal.appends == 5
        fsyncs = registry.get("repro_wal_fsync_seconds").as_dict()
        assert fsyncs["values"][0]["count"] == wal.flushes

    def test_group_commit_batch_metric_sees_shared_flushes(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        wal = WriteAheadLog(
            str(tmp_path / "w"),
            fsync=False,
            flush_delay_s=0.003,
            metrics=registry,
        )
        threads = 8
        lock = threading.Lock()
        next_lsn = [1]
        barrier = threading.Barrier(threads)

        def worker(_index):
            barrier.wait()
            for _ in range(4):
                with lock:
                    lsn = next_lsn[0]
                    next_lsn[0] += 1
                    wal.append(_record(lsn, "n%d" % lsn))
                wal.sync(lsn)

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        wal.close()
        row = registry.get("repro_wal_group_commit_batch").as_dict()["values"][0]
        assert row["sum"] == threads * 4       # every record in some batch
        assert row["count"] == wal.flushes     # one observation per flush
        assert row["count"] < threads * 4      # and batching actually happened

    def test_crash_poisons_every_waiter(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path / "w"),
            fsync=False,
            flush_delay_s=0.005,
            crash_plan=CrashPlan(crash_at_flush=0, torn_bytes=3),
        )
        outcomes = []
        barrier = threading.Barrier(4)

        def worker(index):
            barrier.wait()
            try:
                wal.append(_record(index + 1, "n%d" % index))
                wal.sync(index + 1)
                outcomes.append("acked")
            except SimulatedCrash:
                outcomes.append("crashed")
            except WalError:
                outcomes.append("dead")

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        # Nobody got an ack: the crashed flush acknowledged nothing.
        assert "acked" not in outcomes
        # Recovery sees at most a torn fragment, never a whole record.
        records, _, _ = scan_wal(wal.path)
        assert records == []


class TestCrashMatrix:
    def test_recovery_is_deterministic_and_acked_complete(self, tmp_path):
        """Sweep the crash point across flushes and the tear across byte
        offsets; after every crash, recovery holds exactly the acked
        prefix (frames are ~100 bytes; tears land before, inside and
        beyond one frame's header and payload)."""
        for crash_at in (0, 1, 2, 3):
            for torn_bytes in (0, 3, 11, 60, 150):
                data_dir = tmp_path / ("case_%d_%d" % (crash_at, torn_bytes))
                data_dir.mkdir()
                path = str(data_dir / "wal.log")
                wal = WriteAheadLog(
                    path,
                    fsync=False,
                    crash_plan=CrashPlan(crash_at, torn_bytes),
                )
                acked = []
                for lsn in range(1, 7):
                    try:
                        wal.commit(_record(lsn, "n%d" % lsn))
                        acked.append(lsn)
                    except SimulatedCrash:
                        break
                assert len(acked) == crash_at, "crash fired at the wrong flush"
                first = scan_wal(path)
                # Physical truncation then rescan: same records (determinism).
                _wal2, records, _torn = WriteAheadLog.open_existing(path, fsync=False)
                _wal2.close()
                second = scan_wal(path)
                assert [r.lsn for r in first[0]] == [r.lsn for r in records]
                assert [r.lsn for r in second[0]] == [r.lsn for r in records]
                assert second[2] is False  # tail gone after truncation
                recovered = [r.lsn for r in records]
                # Every acked commit is present, in order, as a prefix.
                assert recovered[: len(acked)] == acked
                # No invented or reordered records: recovery is a prefix
                # of what was submitted.  A tear wide enough to cover a
                # whole frame may persist the next record even though its
                # ack was lost -- that is legitimate; a *partial* frame
                # never surfaces (checksum + length gate).
                assert recovered == list(range(1, len(recovered) + 1))
                assert len(recovered) <= len(acked) + 1
                for record in records:
                    assert record.entry is not None
                    assert record.entry.values("name") == ("n%d" % record.lsn,)


class TestScanReport:
    """Mid-file corruption observability: the structured scan report
    quantifies what recovery gave up -- recovered vs lost counts."""

    def _write(self, path, count):
        wal = WriteAheadLog(path, fsync=False)
        frames = []
        for lsn in range(1, count + 1):
            frames.append(encode_record(_record(lsn, "n%d" % lsn)))
            wal.commit(_record(lsn, "n%d" % lsn))
        wal.close()
        return frames

    def test_clean_log_reports_nothing_lost(self, tmp_path):
        from repro.txn.wal import scan_wal_report

        path = str(tmp_path / "wal.log")
        self._write(path, 4)
        report = scan_wal_report(path)
        assert [r.lsn for r in report.records] == [1, 2, 3, 4]
        assert not report.torn
        assert report.garbage_bytes == 0
        assert report.lost_records == 0
        assert report.valid_bytes == os.path.getsize(path)

    def test_mid_file_corruption_stops_the_scan_at_the_first_bad_frame(
            self, tmp_path):
        from repro.txn.wal import scan_wal_report

        path = str(tmp_path / "wal.log")
        frames = self._write(path, 5)
        # Flip a payload byte in the *third* frame: everything after it
        # is unreachable even though frames 4-5 are intact on disk.
        offset = len(frames[0]) + len(frames[1]) + len(frames[2]) - 1
        data = bytearray(open(path, "rb").read())
        data[offset] ^= 0xFF
        with open(path, "wb") as stream:
            stream.write(data)
        report = scan_wal_report(path)
        assert [r.lsn for r in report.records] == [1, 2]
        assert report.torn
        assert report.valid_bytes == len(frames[0]) + len(frames[1])
        assert report.garbage_bytes == len(frames[2]) + len(frames[3]) + len(frames[4])
        # The bad frame itself plus the two stranded good frames.
        assert report.lost_records == 3

    def test_torn_half_frame_counts_no_whole_records(self, tmp_path):
        from repro.txn.wal import scan_wal_report

        path = str(tmp_path / "wal.log")
        self._write(path, 2)
        whole = os.path.getsize(path)
        fragment = encode_record(_record(3, "cut"))
        with open(path, "ab") as stream:
            stream.write(fragment[: len(fragment) // 3])
        report = scan_wal_report(path)
        assert [r.lsn for r in report.records] == [1, 2]
        assert report.torn
        assert report.garbage_bytes == os.path.getsize(path) - whole
        assert report.lost_records == 0  # a fragment is not a record

    def test_recovery_from_mid_file_corruption_is_consistent(self, tmp_path):
        """DurableDirectory reopens to exactly the surviving prefix and
        keeps appending cleanly past the truncation point."""
        from repro.model.instance import DirectoryInstance
        from repro.txn.durable import DurableDirectory
        from repro.workload import synthetic_schema

        data_dir = str(tmp_path / "dir")
        durable = DurableDirectory.open(
            data_dir, DirectoryInstance(synthetic_schema()), fsync=False)
        durable.add("name=r", ["node"], name="r")
        for index in range(4):
            durable.add("name=e%d, name=r" % index, ["node"],
                        name="e%d" % index)
        durable.close()
        wal_path = os.path.join(data_dir, "wal.log")
        frames_len = os.path.getsize(wal_path)
        # Corrupt a byte ~60% in: the scan stops mid-file.
        data = bytearray(open(wal_path, "rb").read())
        data[int(frames_len * 0.6)] ^= 0xFF
        with open(wal_path, "wb") as stream:
            stream.write(data)
        reopened = DurableDirectory.open(data_dir, fsync=False)
        status = reopened.durability_status()
        assert status["torn_truncations"] == 1
        assert status["torn_bytes_truncated"] > 0
        # The scan stopped mid-file: only a strict prefix replayed.
        head = reopened.head_lsn
        assert 1 <= head < 5
        assert reopened.lookup("name=r") is not None
        for index in range(4):
            dn = "name=e%d, name=r" % index
            found = reopened.lookup(dn) is not None
            assert found == (index + 2 <= head)  # e{i} was lsn i+2
        # Appending continues from the recovered head; a clean reopen
        # then sees the surviving prefix plus the new write.
        reopened.add("name=after, name=r", ["node"], name="after")
        after_lsn = reopened.head_lsn
        reopened.close()
        final = DurableDirectory.open(data_dir, fsync=False)
        assert final.head_lsn == after_lsn
        assert final.lookup("name=after, name=r") is not None
        final.close()


class TestTornTruncationObservability:
    def test_metric_warning_and_status_flag(self, tmp_path):
        from repro.obs.log import CapturingLogger
        from repro.obs.metrics import MetricsRegistry
        from repro.txn.wal import scan_wal_report

        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1, "keep"))
        wal.commit(_record(2, "keep2"))
        wal.close()
        fragment = encode_record(_record(3, "cut"))
        with open(path, "ab") as stream:
            stream.write(fragment[:-4])
        expected_garbage = scan_wal_report(path).garbage_bytes

        metrics = MetricsRegistry()
        log = CapturingLogger()
        wal2, records, torn = WriteAheadLog.open_existing(
            path, fsync=False, metrics=metrics, log=log)
        wal2.close()
        assert torn
        assert [r.lsn for r in records] == [1, 2]
        assert wal2.torn_truncations == 1
        assert wal2.torn_bytes_truncated == expected_garbage
        assert metrics.get("repro_wal_torn_truncations_total").value() == 1
        events = log.events("wal.torn_truncated")
        assert len(events) == 1
        assert events[0]["truncated_bytes"] == expected_garbage
        assert events[0]["recovered_records"] == 2
        assert events[0]["durable_lsn"] == 2

    def test_clean_open_reports_no_truncation(self, tmp_path):
        from repro.obs.log import CapturingLogger
        from repro.obs.metrics import MetricsRegistry

        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=False)
        wal.commit(_record(1))
        wal.close()
        metrics = MetricsRegistry()
        log = CapturingLogger()
        wal2, _records, torn = WriteAheadLog.open_existing(
            path, fsync=False, metrics=metrics, log=log)
        wal2.close()
        assert not torn
        assert wal2.torn_truncations == 0
        assert metrics.get("repro_wal_torn_truncations_total").value() == 0
        assert log.events("wal.torn_truncated") == []
