"""MVCC version chain: snapshot immutability, folding, truncation."""

import pytest

from repro.model.dn import DN
from repro.model.entry import Entry
from repro.txn.mvcc import VersionChain


def _dn(text):
    return DN.parse(text)


def _entry(text, **attrs):
    dn = DN.parse(text)
    values = {name: [value] for name, value in attrs.items()}
    return Entry(dn, ["node"], values or {"name": ["x"]})


class TestAdvance:
    def test_lsns_are_dense_and_monotone(self):
        chain = VersionChain()
        seen = []
        for i in range(5):
            version = chain.advance(
                adds={}, deletes={_dn("name=n%d, dc=com" % i)}, delete_subtrees=set()
            )
            seen.append(version.lsn)
        assert seen == [1, 2, 3, 4, 5]
        assert chain.head_lsn == 5

    def test_start_lsn_offsets_numbering(self):
        chain = VersionChain(start_lsn=40)
        version = chain.advance(adds={}, deletes=set(), delete_subtrees=set())
        assert version.lsn == 41
        assert chain.floor_lsn == 40


class TestSnapshotIsolation:
    def test_snapshot_does_not_see_later_writes(self):
        chain = VersionChain()
        dn_a = _dn("name=a, dc=com")
        dn_b = _dn("name=b, dc=com")
        chain.advance(adds={dn_a: _entry("name=a, dc=com", name="a")},
                      deletes=set(), delete_subtrees=set())
        snap = chain.snapshot()
        chain.advance(adds={dn_b: _entry("name=b, dc=com", name="b")},
                      deletes={dn_a}, delete_subtrees=set())
        kind, entry = snap.overlay_lookup(dn_a)
        assert kind == "add"
        assert entry.values("name") == ("a",)
        assert snap.overlay_lookup(dn_b) is None
        assert snap.lsn == 1
        # A fresh snapshot sees the new world.
        later = chain.snapshot()
        assert later.is_deleted(dn_a)
        assert later.overlay_lookup(dn_b)[0] == "add"
        assert later.lsn == 2

    def test_snapshot_survives_truncation(self):
        chain = VersionChain()
        dns = []
        for i in range(4):
            dn = _dn("name=n%d, dc=com" % i)
            dns.append(dn)
            chain.advance(adds={dn: _entry("name=n%d, dc=com" % i, name="n%d" % i)},
                          deletes=set(), delete_subtrees=set())
        snap = chain.snapshot()
        chain.truncate(4)  # everything folded into the base store
        assert chain.floor_lsn == 4
        # The pre-truncation snapshot still answers from its pinned versions.
        adds, deletes, subtrees = snap.folded()
        assert set(adds) == set(dns)
        assert not deletes and not subtrees
        # New snapshots start empty above the floor.
        fresh = chain.snapshot()
        assert fresh.pending() == 0
        assert fresh.lsn == 4

    def test_truncation_floor_is_monotone(self):
        chain = VersionChain()
        for i in range(3):
            chain.advance(adds={}, deletes={_dn("name=n%d, dc=com" % i)},
                          delete_subtrees=set())
        chain.truncate(2)
        chain.truncate(1)  # lower floor is a no-op, not a regression
        assert chain.floor_lsn == 2
        snap = chain.snapshot()
        assert [v.lsn for v in snap.versions] == [3]


class TestFolding:
    def test_later_add_resurrects_deleted_dn(self):
        chain = VersionChain()
        dn = _dn("name=a, dc=com")
        chain.advance(adds={}, deletes={dn}, delete_subtrees=set())
        chain.advance(adds={dn: _entry("name=a, dc=com", name="a")},
                      deletes=set(), delete_subtrees=set())
        adds, deletes, _ = chain.snapshot().folded()
        assert dn in adds
        assert dn not in deletes

    def test_later_subtree_delete_clears_adds_beneath(self):
        chain = VersionChain()
        root = _dn("o=unit, dc=com")
        child = _dn("name=a, o=unit, dc=com")
        outside = _dn("name=z, dc=com")
        chain.advance(
            adds={
                child: _entry("name=a, o=unit, dc=com", name="a"),
                outside: _entry("name=z, dc=com", name="z"),
            },
            deletes=set(),
            delete_subtrees=set(),
        )
        chain.advance(adds={}, deletes=set(), delete_subtrees={root})
        snap = chain.snapshot()
        adds, _, subtrees = snap.folded()
        assert child not in adds
        assert outside in adds
        assert root in subtrees
        assert snap.is_deleted(child)
        assert not snap.is_deleted(outside)

    def test_overlay_lookup_prefers_newest_version(self):
        chain = VersionChain()
        dn = _dn("name=a, dc=com")
        chain.advance(adds={dn: _entry("name=a, dc=com", name="a")},
                      deletes=set(), delete_subtrees=set())
        chain.advance(adds={dn: _entry("name=a, dc=com", name="a2")},
                      deletes=set(), delete_subtrees=set())
        kind, entry = chain.snapshot().overlay_lookup(dn)
        assert kind == "add"
        assert entry.values("name") == ("a2",)

    def test_folded_returns_defensive_copies(self):
        chain = VersionChain()
        dn = _dn("name=a, dc=com")
        chain.advance(adds={dn: _entry("name=a, dc=com", name="a")},
                      deletes=set(), delete_subtrees=set())
        snap = chain.snapshot()
        adds, deletes, subtrees = snap.folded()
        adds.clear()
        deletes.add(dn)
        adds2, deletes2, _ = snap.folded()
        assert dn in adds2
        assert dn not in deletes2

    def test_pending_counts_all_folded_operations(self):
        chain = VersionChain()
        dn_a = _dn("name=a, dc=com")
        dn_b = _dn("name=b, dc=com")
        chain.advance(adds={dn_a: _entry("name=a, dc=com", name="a")},
                      deletes={dn_b}, delete_subtrees={_dn("o=gone, dc=com")})
        assert chain.snapshot().pending() == 3
