"""DurableDirectory: open/replay/checkpoint, crash recovery, differentials."""

import os
import shutil

import pytest

from repro.txn.durable import DurableDirectory
from repro.txn.wal import CrashPlan, SimulatedCrash
from repro.workload import random_instance


def _open(data_dir, instance=None, **options):
    return DurableDirectory.open(str(data_dir), instance, page_size=8, **options)


def _materialise(directory):
    """The logical directory state as a comparable value."""
    with directory.acquire_view() as view:
        entries = {}
        seen = set()
        for entry in view.store.scan_all():
            if view.snapshot.is_deleted(entry.dn):
                continue
            key = str(entry.dn)
            seen.add(key)
            entries[key] = (
                tuple(sorted(entry.classes)),
                tuple(
                    (name, tuple(entry.values(name)))
                    for name in sorted(entry.attributes())
                ),
            )
        adds, _, _ = view.snapshot.folded()
        for dn, entry in adds.items():
            key = str(dn)
            entries[key] = (
                tuple(sorted(entry.classes)),
                tuple(
                    (name, tuple(entry.values(name)))
                    for name in sorted(entry.attributes())
                ),
            )
        return entries


class TestOpenReplay:
    def test_fresh_open_requires_instance(self, tmp_path):
        with pytest.raises(Exception):
            _open(tmp_path / "empty")

    def test_round_trip_without_checkpoint(self, tmp_path):
        instance = random_instance(23, size=40)
        data_dir = tmp_path / "d"
        directory = _open(data_dir, instance)
        root = next(iter(instance.roots())).dn
        directory.add(root.child("name=w1"), ["node"], name="w1", kind="alpha")
        directory.add(root.child("name=w2"), ["node"], name="w2", kind="beta")
        directory.delete(root.child("name=w1"))
        before = _materialise(directory)
        head = directory.head_lsn
        directory.close()

        reopened = _open(data_dir)
        assert reopened.recovered_records == 3
        assert reopened.head_lsn == head
        assert _materialise(reopened) == before
        assert reopened.lookup(root.child("name=w2")) is not None
        assert reopened.lookup(root.child("name=w1")) is None
        reopened.close()

    def test_checkpoint_truncates_wal_and_preserves_state(self, tmp_path):
        instance = random_instance(7, size=30)
        data_dir = tmp_path / "d"
        directory = _open(data_dir, instance)
        root = next(iter(instance.roots())).dn
        for i in range(5):
            directory.add(root.child("name=c%d" % i), ["node"], name="c%d" % i)
        checkpoint_lsn = directory.checkpoint()
        assert checkpoint_lsn == 5
        assert os.path.getsize(str(data_dir / "wal.log")) == 0
        directory.add(root.child("name=after"), ["node"], name="after")
        before = _materialise(directory)
        directory.close()

        reopened = _open(data_dir)
        # Only the post-checkpoint record replays.
        assert reopened.recovered_records == 1
        assert reopened.head_lsn == 6
        assert _materialise(reopened) == before
        reopened.close()

    def test_replay_skips_records_already_checkpointed(self, tmp_path):
        """A crash between the manifest rename and the WAL truncation
        leaves already-folded records in the log; replay must skip them
        by lsn instead of double-applying."""
        instance = random_instance(11, size=20)
        data_dir = tmp_path / "d"
        directory = _open(data_dir, instance)
        root = next(iter(instance.roots())).dn
        directory.add(root.child("name=x"), ["node"], name="x")
        directory.add(root.child("name=y"), ["node"], name="y")
        wal_path = str(data_dir / "wal.log")
        stale_wal = open(wal_path, "rb").read()
        directory.checkpoint()
        before = _materialise(directory)
        directory.close()
        # Simulate the torn checkpoint: manifest advanced, WAL untouched.
        with open(wal_path, "wb") as stream:
            stream.write(stale_wal)

        reopened = _open(data_dir)
        assert reopened.recovered_records == 0  # all ≤ checkpoint_lsn
        assert _materialise(reopened) == before
        # And the directory still works (duplicate add properly rejected).
        from repro.storage.maintenance import UpdateError

        with pytest.raises(UpdateError):
            reopened.add(root.child("name=x"), ["node"], name="x")
        reopened.close()

    def test_durability_status_reports_lsns(self, tmp_path):
        instance = random_instance(3, size=10)
        directory = _open(tmp_path / "d", instance)
        root = next(iter(instance.roots())).dn
        directory.add(root.child("name=s"), ["node"], name="s")
        status = directory.durability_status()
        assert status["durable_lsn"] == 1
        assert status["head_lsn"] == 1
        assert status["checkpoint_lsn"] == 0
        assert status["wal_appends"] == 1
        directory.close()


class TestCrashRecovery:
    def test_acked_commits_survive_crash(self, tmp_path):
        instance = random_instance(5, size=20)
        data_dir = tmp_path / "d"
        directory = _open(
            data_dir, instance, crash_plan=CrashPlan(crash_at_flush=3, torn_bytes=17)
        )
        root = next(iter(instance.roots())).dn
        acked = []
        crashed = False
        for i in range(8):
            name = "k%d" % i
            try:
                directory.add(root.child("name=%s" % name), ["node"], name=name)
                acked.append(name)
            except SimulatedCrash:
                crashed = True
                break
        assert crashed and len(acked) == 3

        reopened = _open(data_dir)
        assert reopened.recovered_torn  # the torn fragment was detected
        for name in acked:
            assert reopened.lookup(root.child("name=%s" % name)) is not None
        # The crashed (never acked) record did not surface.
        assert reopened.lookup(root.child("name=k3")) is None
        assert reopened.head_lsn == len(acked)
        reopened.close()

    def test_double_reopen_is_bit_identical(self, tmp_path):
        instance = random_instance(9, size=20)
        data_dir = tmp_path / "d"
        directory = _open(
            data_dir, instance, crash_plan=CrashPlan(crash_at_flush=2, torn_bytes=40)
        )
        root = next(iter(instance.roots())).dn
        try:
            for i in range(6):
                directory.add(root.child("name=r%d" % i), ["node"], name="r%d" % i)
        except SimulatedCrash:
            pass

        first = _open(data_dir)
        state_one = _materialise(first)
        head_one = first.head_lsn
        first.close()
        second = _open(data_dir)
        assert _materialise(second) == state_one
        assert second.head_lsn == head_one
        second.close()


class TestDifferential:
    def test_recovered_state_matches_sequential_reference(self, tmp_path):
        """Replay-from-WAL must land bit-identically on the state an
        uncrashed sequential run reaches at the same lsn."""
        instance = random_instance(13, size=30)
        live_dir = tmp_path / "live"
        directory = _open(live_dir, instance)
        root = next(iter(instance.roots())).dn
        script = [
            ("add", "d0", {"name": "d0", "kind": "alpha"}),
            ("add", "d1", {"name": "d1", "kind": "beta"}),
            ("modify", "d0", {"kind": ["gamma"]}),
            ("delete", "d1", None),
            ("add", "d2", {"name": "d2", "kind": "alpha"}),
        ]
        for op, name, payload in script:
            dn = root.child("name=%s" % name)
            if op == "add":
                directory.add(dn, ["node"], **payload)
            elif op == "modify":
                directory.modify(dn, payload)
            else:
                directory.delete(dn)
        live_state = _materialise(directory)
        directory.close()

        # Reference: same script against a second durable dir, then make
        # the first prove itself through recovery alone.
        recovered = _open(live_dir)
        assert recovered.recovered_records == len(script)
        assert _materialise(recovered) == live_state
        # Compaction folds the overlay; the logical state is unchanged.
        recovered.compact()
        assert _materialise(recovered) == live_state
        recovered.close()
