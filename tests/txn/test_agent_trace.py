"""Trace propagation into the maintenance agent: background work must
join the submitting request's trace, not start an orphan one."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.txn.agent import MaintenanceAgent


@pytest.fixture
def agent_stack():
    tracer = Tracer()
    agent = MaintenanceAgent(metrics=MetricsRegistry(), tracer=tracer).start()
    yield tracer, agent
    agent.stop()


class TestTracePropagation:
    def test_background_span_joins_the_submitters_trace(self, agent_stack):
        tracer, agent = agent_stack
        with tracer.span("update") as update_span:
            agent.submit("compact", lambda: None)
        agent.drain()
        spans = tracer.root_spans
        root = next(s for s in spans if s.name == "update")
        # The maintenance span grafted under the foreground update: same
        # trace id, parented on the update span, run on another thread.
        maintenance = next(s for s in spans if s.name == "maintenance.compact")
        assert maintenance.trace_id == root.trace_id
        assert maintenance.parent_id == root.span_id
        assert maintenance.attrs["kind"] == "compact"

    def test_submission_outside_any_span_starts_a_fresh_trace(
        self, agent_stack
    ):
        tracer, agent = agent_stack
        agent.submit("checkpoint", lambda: None)
        agent.drain()
        span = next(
            s for s in tracer.root_spans if s.name == "maintenance.checkpoint"
        )
        assert span.parent_id is None

    def test_worker_context_is_released_between_requests(self, agent_stack):
        tracer, agent = agent_stack
        with tracer.span("first"):
            agent.submit("compact", lambda: None)
        agent.drain()
        # A traceless submission after a traced one must not inherit the
        # stale context left by the previous request.
        agent.submit("checkpoint", lambda: None)
        agent.drain()
        checkpoint = next(
            s for s in tracer.root_spans if s.name == "maintenance.checkpoint"
        )
        first = next(s for s in tracer.root_spans if s.name == "first")
        assert checkpoint.trace_id != first.trace_id

    def test_failures_still_release_the_adopted_context(self, agent_stack):
        tracer, agent = agent_stack

        def boom():
            raise RuntimeError("boom")

        with tracer.span("update"):
            agent.submit("compact", boom)
        agent.drain()
        assert agent.failures == 1
        agent.submit("checkpoint", lambda: None)
        agent.drain()
        checkpoint = next(
            s for s in tracer.root_spans if s.name == "maintenance.checkpoint"
        )
        assert checkpoint.parent_id is None

    def test_default_null_tracer_keeps_the_agent_working(self):
        agent = MaintenanceAgent(metrics=MetricsRegistry()).start()
        try:
            done = []
            agent.submit("compact", lambda: done.append(1))
            agent.drain()
            assert done == [1]
        finally:
            agent.stop()
