"""Every example script must run cleanly end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more
