"""Subtree access control and the secured engine."""

import pytest

from repro.apps import tops
from repro.engine import QueryEngine
from repro.model.dn import DN
from repro.security import AccessControlList, SecuredEngine


@pytest.fixture(scope="module")
def setup():
    directory = tops.build_paper_fragment()
    directory.add_subscriber("divesh", "divesh srivastava", "srivastava")
    directory.add_qhp("divesh", "anyone", priority=1)
    engine = directory.engine(page_size=8)
    return directory, engine


JAG = "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"
DIVESH = "uid=divesh, ou=userProfiles, dc=research, dc=att, dc=com"


class TestACL:
    def test_default_deny(self):
        acl = AccessControlList()
        assert not acl.readable("anyone", DN.parse(JAG))

    def test_default_allow(self):
        acl = AccessControlList(default_allow=True)
        assert acl.readable(None, DN.parse(JAG))

    def test_subject_scoping(self):
        acl = AccessControlList()
        acl.allow("jag", JAG)
        assert acl.readable("jag", DN.parse(JAG))
        assert acl.readable("jag", DN.parse("QHPName=weekend, " + JAG))
        assert not acl.readable("divesh", DN.parse(JAG))
        assert not acl.readable(None, DN.parse(JAG))

    def test_most_specific_wins(self):
        acl = AccessControlList()
        acl.allow("*", "dc=research, dc=att, dc=com")
        acl.deny("*", JAG)  # deeper scope overrides the broad allow
        assert acl.readable("x", DN.parse(DIVESH))
        assert not acl.readable("x", DN.parse(JAG))
        assert not acl.readable("x", DN.parse("QHPName=weekend, " + JAG))

    def test_specific_allow_inside_deny(self):
        acl = AccessControlList()
        acl.deny("*", JAG)
        acl.allow("*", "QHPName=weekend, " + JAG)
        assert acl.readable("x", DN.parse("QHPName=weekend, " + JAG))
        assert not acl.readable("x", DN.parse(JAG))

    def test_base_only_rule(self):
        acl = AccessControlList()
        acl.allow("*", JAG, base_only=True)
        assert acl.readable("x", DN.parse(JAG))
        assert not acl.readable("x", DN.parse("QHPName=weekend, " + JAG))

    def test_named_subject_beats_wildcard_at_same_scope(self):
        acl = AccessControlList()
        acl.deny("*", JAG)
        acl.allow("jag", JAG)
        assert acl.readable("jag", DN.parse(JAG))
        assert not acl.readable("other", DN.parse(JAG))

    def test_order_breaks_specificity_ties(self):
        acl = AccessControlList()
        acl.deny("*", JAG)
        acl.allow("*", JAG)  # same specificity: the earlier rule wins
        assert not acl.readable("x", DN.parse(JAG))


class TestSecuredEngine:
    def test_subject_sees_own_subtree_only(self, setup):
        _directory, engine = setup
        acl = AccessControlList()
        acl.allow("*", "ou=userProfiles, dc=research, dc=att, dc=com", base_only=True)
        acl.allow("jag", JAG)
        acl.allow("divesh", DIVESH)
        secured = SecuredEngine(engine, acl)
        query = "( ? sub ? objectClass=QHP)"
        assert all("uid=jag" in dn for dn in secured.run(query, subject="jag").dns())
        assert all(
            "uid=divesh" in dn for dn in secured.run(query, subject="divesh").dns()
        )
        assert secured.run(query, subject=None).dns() == []

    def test_filtering_does_not_change_io_semantics(self, setup):
        _directory, engine = setup
        acl = AccessControlList(default_allow=True)
        secured = SecuredEngine(engine, acl)
        open_result = secured.run("( ? sub ? objectClass=*)", subject="anyone")
        raw = engine.run("( ? sub ? objectClass=*)")
        assert open_result.dns() == raw.dns()
